"""Homopolymer-free constrained encoding (Goldman-style rotation code).

Real synthesis and sequencing error rates explode on homopolymer runs
(AAAA...), so production DNA codecs avoid them by construction.  The
classic scheme (Goldman et al., the lineage behind the robust encodings
of [25]) writes the payload in base 3 and maps each trit to one of the
*three bases different from the previous base* -- no two consecutive
bases can ever be equal, capping homopolymer runs at 1 by construction.

The cost is density: log2(3) ~ 1.585 bits/base instead of the 2
bits/base of the unconstrained Fig. 6a mapping.  Both codecs coexist in
the package; the tests quantify the trade.
"""

from __future__ import annotations

from typing import List

from repro.dna.encoding import BASES

#: Rotation table: _NEXT[previous_base][trit] -> next base.
_NEXT = {
    prev: [b for b in BASES if b != prev] for prev in BASES
}
_TRIT_OF = {
    prev: {b: i for i, b in enumerate(choices)}
    for prev, choices in _NEXT.items()
}
#: Virtual predecessor for the first base.
_START = "A"


def _bytes_to_trits(data: bytes) -> List[int]:
    """Big-endian base-3 digits of (1 || data) -- the leading 1 guards
    leading zero bytes."""
    number = int.from_bytes(b"\x01" + data, "big")
    trits: List[int] = []
    while number:
        number, trit = divmod(number, 3)
        trits.append(trit)
    trits.reverse()
    return trits


def _trits_to_bytes(trits: List[int]) -> bytes:
    number = 0
    for trit in trits:
        if trit not in (0, 1, 2):
            raise ValueError(f"invalid trit {trit!r}")
        number = number * 3 + trit
    raw = number.to_bytes((number.bit_length() + 7) // 8, "big")
    if not raw or raw[0] != 1:
        raise ValueError("corrupted trit stream (missing sentinel)")
    return raw[1:]


def encode_constrained(data: bytes) -> str:
    """Encode *data* into a homopolymer-free strand."""
    if not data:
        raise ValueError("payload must be non-empty")
    strand: List[str] = []
    previous = _START
    for trit in _bytes_to_trits(data):
        base = _NEXT[previous][trit]
        strand.append(base)
        previous = base
    return "".join(strand)


def decode_constrained(strand: str) -> bytes:
    """Decode a strand produced by :func:`encode_constrained`."""
    if not strand:
        raise ValueError("strand must be non-empty")
    trits: List[int] = []
    previous = _START
    for base in strand:
        if base not in BASES:
            raise ValueError(f"invalid base {base!r}")
        if base == previous:
            raise ValueError(
                "homopolymer run found; not a constrained-code strand"
            )
        trits.append(_TRIT_OF[previous][base])
        previous = base
    return _trits_to_bytes(trits)


def density_bits_per_base() -> float:
    """Information density of the constrained code (log2 3)."""
    import math

    return math.log2(3.0)


def expansion_vs_unconstrained(payload_bytes: int) -> float:
    """Strand-length ratio of constrained vs plain 2-bit/base encoding
    for a *payload_bytes* payload (the density cost of the constraint)."""
    if payload_bytes < 1:
        raise ValueError("payload_bytes must be >= 1")
    plain = 4 * payload_bytes
    import math

    constrained = math.ceil(8 * payload_bytes / math.log2(3.0))
    return constrained / plain
