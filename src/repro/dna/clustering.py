"""Read clustering by edit distance (paper Sec. VI, ref [32]).

After sequencing, the pool contains many noisy copies of each stored
oligo; decoding starts by grouping reads that descend from the same
strand.  "The similarity index is determined using the edit distance" --
this module implements the standard greedy representative-based scheme:
each read is compared against current cluster representatives with the
*banded* Levenshtein kernel (distance threshold = band), joining the
first match or founding a new cluster.

The number of banded comparisons performed is recorded -- it is the
workload figure the FPGA accelerator bench converts into compute time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dna.editdistance import CellUpdateCounter, levenshtein_banded


@dataclass
class Cluster:
    """One read cluster with its founding representative."""

    representative: str
    reads: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.reads)


@dataclass
class ClusteringResult:
    """Clusters plus the work accounting of the run."""

    clusters: List[Cluster]
    comparisons: int
    cell_updates: int

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def cluster_reads(
    reads: List[str],
    distance_threshold: int,
    counter: Optional[CellUpdateCounter] = None,
    impl: str = "numpy",
) -> ClusteringResult:
    """Greedy edit-distance clustering of *reads*.

    A read joins the first existing cluster whose representative is
    within *distance_threshold* edits (banded comparison), otherwise it
    founds a new cluster with itself as representative.
    """
    if distance_threshold < 0:
        raise ValueError("distance_threshold must be non-negative")
    counter = counter if counter is not None else CellUpdateCounter()
    clusters: List[Cluster] = []
    comparisons = 0
    for read in reads:
        placed = False
        for cluster in clusters:
            comparisons += 1
            distance = levenshtein_banded(
                read, cluster.representative, band=distance_threshold,
                counter=counter, impl=impl,
            )
            if distance is not None:
                cluster.reads.append(read)
                placed = True
                break
        if not placed:
            clusters.append(Cluster(representative=read, reads=[read]))
    return ClusteringResult(
        clusters=clusters,
        comparisons=comparisons,
        cell_updates=counter.cells,
    )


def clustering_purity(
    result: ClusteringResult, read_origins: List[int], reads: List[str]
) -> float:
    """Fraction of reads grouped with the majority origin of their
    cluster (requires ground-truth *read_origins* aligned with *reads*).

    Used by the benches to validate the clustering quality before timing
    it.
    """
    if len(read_origins) != len(reads):
        raise ValueError("origins must align with reads")
    origin_of = {}
    for read, origin in zip(reads, read_origins):
        origin_of.setdefault(read, origin)
    correct = 0
    total = 0
    for cluster in result.clusters:
        origins = [origin_of[r] for r in cluster.reads if r in origin_of]
        if not origins:
            continue
        majority = max(set(origins), key=origins.count)
        correct += origins.count(majority)
        total += len(origins)
    if total == 0:
        raise ValueError("no reads with known origins")
    return correct / total
