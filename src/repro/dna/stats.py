"""Channel characterization: estimating error rates from reads.

The DNAssim-class frameworks the project accelerates [26] are "designed
to capture the unique aspects of encoding and decoding information", and
the "most crucial element of the model involves the DNA channel noise
characteristics".  This module closes that loop: given noisy reads and
the reference strand (or a consensus standing in for it), it estimates
the per-base substitution / insertion / deletion rates by alignment
traceback -- the calibration step a real deployment runs before choosing
its ECC strength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dna.consensus import align_to_template


@dataclass(frozen=True)
class ChannelEstimate:
    """Estimated per-base error rates."""

    substitution_rate: float
    insertion_rate: float
    deletion_rate: float
    bases_observed: int

    @property
    def total_error_rate(self) -> float:
        return (
            self.substitution_rate
            + self.insertion_rate
            + self.deletion_rate
        )


def estimate_channel(
    reads: Sequence[str], reference: str
) -> ChannelEstimate:
    """Estimate channel error rates from *reads* of *reference*.

    Each read is aligned to the reference; matches, substitutions,
    deletions and insertions are tallied per reference base.
    """
    if not reads:
        raise ValueError("need at least one read")
    if not reference:
        raise ValueError("reference must be non-empty")
    substitutions = deletions = insertions = 0
    total_reference_bases = 0
    for read in reads:
        total_reference_bases += len(reference)
        for position, symbol in align_to_template(read, reference):
            if symbol == "":
                deletions += 1
            elif symbol.startswith("+"):
                insertions += 1
            elif symbol != reference[position]:
                substitutions += 1
    return ChannelEstimate(
        substitution_rate=substitutions / total_reference_bases,
        insertion_rate=insertions / total_reference_bases,
        deletion_rate=deletions / total_reference_bases,
        bases_observed=total_reference_bases,
    )


def recommend_rs_parity(
    estimate: ChannelEstimate,
    chunk_bytes: int,
    chunks_per_block: int,
    safety_factor: float = 3.0,
) -> int:
    """Parity bytes per RS block recommended for the estimated channel.

    A chunk (one oligo payload) survives consensus unless its strand
    dropped out or consensus failed; treating the post-consensus chunk
    error probability as ``total_error_rate`` (a conservative bound --
    consensus corrects most per-base errors, dropout dominates), the
    expected bad bytes per block times *safety_factor*, doubled (RS
    corrects ``parity // 2`` errors), gives the parity budget.
    """
    if chunk_bytes < 1 or chunks_per_block < 1:
        raise ValueError("block geometry must be positive")
    if safety_factor <= 0:
        raise ValueError("safety factor must be positive")
    import math

    expected_bad_bytes = (
        estimate.total_error_rate * chunk_bytes * chunks_per_block
    )
    correctable = math.ceil(max(1.0, safety_factor * expected_bad_bytes))
    return min(2 * correctable, 2 * chunks_per_block * chunk_bytes)
