"""Survey analytics backing the Fig. 1 and Fig. 7 benches.

Fig. 1 is a log-log scatter of power vs. throughput with iso-TOPS/W
diagonals; its narrative content is (i) the efficiency *ranking* of platform
classes and (ii) the year-over-year efficiency trend.  Fig. 7 plots the
RISC-V subset and argues that designs cluster in the 100 mW - 1 W band with
a gap above 1 W.  The functions here compute exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.survey.records import AcceleratorRecord, PlatformClass


@dataclass(frozen=True)
class ClassStats:
    """Aggregate efficiency statistics for one platform class."""

    platform: PlatformClass
    count: int
    min_tops_per_watt: float
    median_tops_per_watt: float
    max_tops_per_watt: float


@dataclass(frozen=True)
class EfficiencyTrend:
    """Exponential efficiency trend ``TOPS/W = a * growth**(year - year0)``.

    Fitted by linear regression of log10(TOPS/W) on year.  ``doubling_years``
    is the time for efficiency to double under the fitted trend.
    """

    year0: int
    coefficient: float
    growth_per_year: float

    @property
    def doubling_years(self) -> float:
        if self.growth_per_year <= 1.0:
            return float("inf")
        return float(np.log(2) / np.log(self.growth_per_year))

    def predict(self, year: int) -> float:
        """Predicted TOPS/W for *year*."""
        return self.coefficient * self.growth_per_year ** (year - self.year0)


def class_statistics(records: Sequence[AcceleratorRecord]) -> List[ClassStats]:
    """Per-platform-class efficiency statistics, sorted by median TOPS/W.

    The sort order *is* the Fig. 1 ranking claim: CPUs at the bottom, IMC
    NPUs at the top.
    """
    groups: Dict[PlatformClass, List[float]] = {}
    for rec in records:
        groups.setdefault(rec.platform, []).append(rec.tops_per_watt)
    stats = [
        ClassStats(
            platform=platform,
            count=len(vals),
            min_tops_per_watt=float(np.min(vals)),
            median_tops_per_watt=float(np.median(vals)),
            max_tops_per_watt=float(np.max(vals)),
        )
        for platform, vals in groups.items()
    ]
    stats.sort(key=lambda s: s.median_tops_per_watt)
    return stats


def efficiency_trend(records: Sequence[AcceleratorRecord]) -> EfficiencyTrend:
    """Fit the exponential efficiency-vs-year trend across *records*."""
    if len(records) < 2:
        raise ValueError("need at least two records to fit a trend")
    years = np.array([r.year for r in records], dtype=np.float64)
    log_eff = np.log10([r.tops_per_watt for r in records])
    if np.ptp(years) == 0:
        raise ValueError("records span a single year; trend undefined")
    slope, intercept = np.polyfit(years, log_eff, 1)
    year0 = int(years.min())
    return EfficiencyTrend(
        year0=year0,
        coefficient=float(10 ** (intercept + slope * year0)),
        growth_per_year=float(10**slope),
    )


def scatter_series(
    records: Sequence[AcceleratorRecord],
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Fig. 1 scatter data: platform-class name -> (power_w, tops) arrays."""
    series: Dict[str, Tuple[List[float], List[float]]] = {}
    for rec in records:
        xs, ys = series.setdefault(rec.platform.value, ([], []))
        xs.append(rec.power_w)
        ys.append(rec.peak_tops)
    return {
        name: (np.array(xs), np.array(ys)) for name, (xs, ys) in series.items()
    }


def iso_efficiency_line(
    tops_per_watt: float, power_range: Tuple[float, float], points: int = 16
) -> Tuple[np.ndarray, np.ndarray]:
    """One iso-TOPS/W diagonal of Fig. 1 over *power_range* (log-spaced)."""
    lo, hi = power_range
    if lo <= 0 or hi <= lo:
        raise ValueError("power_range must be positive and increasing")
    power = np.logspace(np.log10(lo), np.log10(hi), points)
    return power, power * tops_per_watt


#: Decade power bands used for the Fig. 7 clustering argument.
POWER_BANDS_W: Tuple[Tuple[float, float], ...] = (
    (0.001, 0.01),
    (0.01, 0.1),
    (0.1, 1.0),
    (1.0, 10.0),
    (10.0, 100.0),
)


def power_band_histogram(
    records: Sequence[AcceleratorRecord],
    bands: Sequence[Tuple[float, float]] = POWER_BANDS_W,
) -> Dict[Tuple[float, float], int]:
    """Count records per power band (left-closed, right-open intervals).

    Applied to the RISC-V subset this reproduces the Fig. 7 claim: the
    0.1-1 W band is the densest and the >1 W HPC region is sparse.
    """
    histogram = {tuple(band): 0 for band in bands}
    for rec in records:
        for band in bands:
            lo, hi = band
            if lo <= rec.power_w < hi:
                histogram[tuple(band)] += 1
                break
    return histogram


def densest_band(
    records: Sequence[AcceleratorRecord],
    bands: Sequence[Tuple[float, float]] = POWER_BANDS_W,
) -> Tuple[float, float]:
    """The power band holding the most records (Fig. 7's cluster)."""
    histogram = power_band_histogram(records, bands)
    return max(histogram, key=histogram.get)
