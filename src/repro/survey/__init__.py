"""State-of-the-art AI-accelerator survey (paper Sec. II, Fig. 1 and Fig. 7).

The first outcome of the ICSC Flagship 2 project is a survey of hardware
accelerators for AI workloads [1]; Fig. 1 plots the surveyed platforms as
power vs. throughput with iso-TOPS/W lines, and Fig. 7 plots the RISC-V
subset, showing a cluster in the 100 mW - 1 W power range and a gap above
1 W that the project targets.

This package provides:

- :mod:`repro.survey.records` -- the :class:`AcceleratorRecord` schema;
- :mod:`repro.survey.dataset` -- a curated dataset of published accelerators
  (values taken from the public literature, the substitution for the
  paper's own survey spreadsheet);
- :mod:`repro.survey.analysis` -- trend fits, per-class statistics, power-band
  clustering and scatter-series export used by the Fig. 1 / Fig. 7 benches.
"""

from repro.survey.records import AcceleratorRecord, PlatformClass, Precision
from repro.survey.dataset import load_dataset, riscv_subset
from repro.survey.io import from_csv, to_csv
from repro.survey.analysis import (
    EfficiencyTrend,
    class_statistics,
    efficiency_trend,
    iso_efficiency_line,
    power_band_histogram,
    scatter_series,
)

__all__ = [
    "AcceleratorRecord",
    "PlatformClass",
    "Precision",
    "load_dataset",
    "riscv_subset",
    "from_csv",
    "to_csv",
    "EfficiencyTrend",
    "class_statistics",
    "efficiency_trend",
    "iso_efficiency_line",
    "power_band_histogram",
    "scatter_series",
]
