"""CSV import/export for the survey dataset.

The survey is living data -- new accelerators appear every conference
cycle -- so the dataset round-trips through plain CSV for maintenance
and for users who want to extend the Fig. 1 / Fig. 7 population with
their own entries.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from repro.survey.records import AcceleratorRecord, PlatformClass, Precision

_FIELDS = [
    "name",
    "year",
    "platform",
    "peak_tops",
    "power_w",
    "precision",
    "technology_nm",
    "europe_based",
    "tags",
]


def to_csv(records: Sequence[AcceleratorRecord]) -> str:
    """Serialize *records* to CSV text (header + one row per record)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for rec in records:
        writer.writerow(
            {
                "name": rec.name,
                "year": rec.year,
                "platform": rec.platform.value,
                "peak_tops": rec.peak_tops,
                "power_w": rec.power_w,
                "precision": rec.precision.value,
                "technology_nm": rec.technology_nm,
                "europe_based": int(rec.europe_based),
                "tags": ";".join(rec.tags),
            }
        )
    return buffer.getvalue()


def from_csv(text: str) -> List[AcceleratorRecord]:
    """Parse CSV *text* back into records; raises on malformed rows."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or set(_FIELDS) - set(reader.fieldnames):
        raise ValueError(
            f"CSV must provide the columns {_FIELDS}"
        )
    platforms = {p.value: p for p in PlatformClass}
    precisions = {p.value: p for p in Precision}
    records = []
    for line_num, row in enumerate(reader, start=2):
        try:
            records.append(
                AcceleratorRecord(
                    name=row["name"],
                    year=int(row["year"]),
                    platform=platforms[row["platform"]],
                    peak_tops=float(row["peak_tops"]),
                    power_w=float(row["power_w"]),
                    precision=precisions[row["precision"]],
                    technology_nm=int(row["technology_nm"]),
                    europe_based=bool(int(row["europe_based"])),
                    tags=tuple(t for t in row["tags"].split(";") if t),
                )
            )
        except (KeyError, ValueError) as exc:
            raise ValueError(f"CSV line {line_num}: {exc}") from exc
    return records
