"""Schema for survey entries.

Each record captures the operating point a vendor or paper reports for an
accelerator: peak throughput at a given precision and the power at which
that throughput is achieved.  Energy efficiency in TOPS/W is derived, never
stored, so the two axes of Fig. 1 can never disagree with the iso-lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class PlatformClass(enum.Enum):
    """Platform taxonomy used by the survey (paper Sec. II)."""

    CPU = "CPU"
    GPU = "GPU"
    TPU = "TPU"
    FPGA = "FPGA"
    CGRA = "CGRA"
    ASIC = "ASIC"
    NPU_SRAM_IMC = "NPU+SRAM-IMC"
    NPU_RRAM_IMC = "NPU+RRAM-IMC"
    NPU_PCM_IMC = "NPU+PCM-IMC"
    RISCV = "RISC-V"


class Precision(enum.Enum):
    """Arithmetic precision at which the peak throughput is quoted."""

    FP64 = "FP64"
    FP32 = "FP32"
    FP16 = "FP16"
    BF16 = "BF16"
    FP8 = "FP8"
    INT8 = "INT8"
    INT4 = "INT4"
    MIXED = "mixed"


@dataclass(frozen=True)
class AcceleratorRecord:
    """One surveyed accelerator operating point."""

    name: str
    year: int
    platform: PlatformClass
    peak_tops: float
    power_w: float
    precision: Precision = Precision.INT8
    technology_nm: int = 0
    europe_based: bool = False
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.peak_tops <= 0:
            raise ValueError(f"{self.name}: peak_tops must be positive")
        if self.power_w <= 0:
            raise ValueError(f"{self.name}: power_w must be positive")
        if not 1990 <= self.year <= 2100:
            raise ValueError(f"{self.name}: implausible year {self.year}")

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency, the y/x ratio plotted in Fig. 1."""
        return self.peak_tops / self.power_w

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.name} ({self.year}, {self.platform.value}): "
            f"{self.peak_tops:g} TOPS @ {self.power_w:g} W = "
            f"{self.tops_per_watt:.2f} TOPS/W [{self.precision.value}]"
        )
