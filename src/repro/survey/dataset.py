"""Curated accelerator dataset (substitution for the project survey data).

The paper's Fig. 1 is "reprinted with permission from [2]" and aggregates the
survey of Silvano et al. [1]; the underlying spreadsheet is not public, so we
re-curate a dataset of the same population from vendor datasheets and the
papers the survey cites.  Values are the publicly quoted peak throughput and
the power at which it is reached; they carry datasheet-level uncertainty,
which is irrelevant for the figure's message (orders-of-magnitude spread and
the efficiency ranking CPU < GPU ~ FPGA < ASIC/CGRA < IMC-NPU).

The RISC-V subset feeds Fig. 7, whose message is the clustering of existing
RISC-V DL accelerators in the 100 mW - 1 W range with a gap above 1 W.
"""

from __future__ import annotations

from typing import List, Optional

from repro.survey.records import AcceleratorRecord, PlatformClass, Precision

_C = PlatformClass
_P = Precision

#: The curated dataset.  One entry per published operating point.
_DATASET: List[AcceleratorRecord] = [
    # --- CPUs (low parallel efficiency; the paper calls them "quite
    # inefficient compared to their GPU counterparts") ------------------
    AcceleratorRecord("Xeon Platinum 8380", 2021, _C.CPU, 1.4, 270, _P.FP32, 10),
    AcceleratorRecord("Xeon Phi 7290 (KNL)", 2016, _C.CPU, 0.4, 245, _P.FP32, 14),
    AcceleratorRecord("EPYC 7763", 2021, _C.CPU, 1.2, 280, _P.FP32, 7),
    AcceleratorRecord("Xeon Max 9480 (AMX)", 2023, _C.CPU, 17.0, 350, _P.INT8, 10),
    AcceleratorRecord("Grace CPU Superchip", 2023, _C.CPU, 7.0, 500, _P.FP16, 5),
    # --- GPUs ----------------------------------------------------------
    AcceleratorRecord("Tesla K80", 2014, _C.GPU, 2.9, 300, _P.FP32, 28),
    AcceleratorRecord("Tesla P100", 2016, _C.GPU, 21.2, 300, _P.FP16, 16),
    AcceleratorRecord("Tesla V100", 2017, _C.GPU, 125, 300, _P.FP16, 12),
    AcceleratorRecord("A100 SXM", 2020, _C.GPU, 624, 400, _P.INT8, 7),
    AcceleratorRecord("H100 SXM", 2022, _C.GPU, 1979, 700, _P.FP8, 4),
    AcceleratorRecord("Jetson AGX Xavier", 2018, _C.GPU, 32, 30, _P.INT8, 12),
    AcceleratorRecord("Jetson Orin NX", 2022, _C.GPU, 100, 25, _P.INT8, 8),
    AcceleratorRecord("MI250X", 2021, _C.GPU, 383, 560, _P.FP16, 6),
    # --- TPUs / datacenter ASICs ----------------------------------------
    AcceleratorRecord("TPU v1", 2017, _C.TPU, 92, 75, _P.INT8, 28),
    AcceleratorRecord("TPU v2", 2017, _C.TPU, 45, 280, _P.BF16, 16),
    AcceleratorRecord("TPU v3", 2018, _C.TPU, 123, 450, _P.BF16, 16),
    AcceleratorRecord("TPU v4", 2021, _C.TPU, 275, 192, _P.BF16, 7),
    AcceleratorRecord("Graphcore IPU Mk2", 2021, _C.TPU, 250, 300, _P.FP16, 7),
    AcceleratorRecord(
        "Tenstorrent Grayskull", 2021, _C.TPU, 92, 65, _P.INT8, 12
    ),
    # --- Edge / inference ASICs -----------------------------------------
    AcceleratorRecord("Eyeriss", 2016, _C.ASIC, 0.084, 0.278, _P.INT8, 65),
    AcceleratorRecord("Eyeriss v2", 2019, _C.ASIC, 0.153, 0.606, _P.INT8, 65),
    AcceleratorRecord("Google Edge TPU", 2019, _C.ASIC, 4, 2, _P.INT8, 14),
    AcceleratorRecord("Movidius Myriad X", 2017, _C.ASIC, 4, 1.5, _P.INT8, 16),
    AcceleratorRecord("Hailo-8", 2020, _C.ASIC, 26, 2.5, _P.INT8, 16),
    AcceleratorRecord(
        "UNPU (variable bit)", 2018, _C.ASIC, 7.37, 0.297, _P.INT4, 65
    ),
    AcceleratorRecord("Envision", 2017, _C.ASIC, 0.076, 0.0044, _P.INT4, 28),
    # --- FPGAs (edge inference; efficiency over raw speed) --------------
    AcceleratorRecord("ZCU102 CNN overlay", 2018, _C.FPGA, 1.2, 20, _P.INT8, 16),
    AcceleratorRecord("Alveo U250 DPU", 2019, _C.FPGA, 33.3, 225, _P.INT8, 16),
    AcceleratorRecord("Alveo U50 (edit dist.)", 2023, _C.FPGA, 16.8, 75, _P.MIXED, 16),
    AcceleratorRecord("Stratix 10 NX", 2020, _C.FPGA, 143, 225, _P.INT8, 14),
    AcceleratorRecord("Versal AI Core VC1902", 2021, _C.FPGA, 133, 75, _P.INT8, 7),
    AcceleratorRecord("ZU3EG FINN BNN", 2017, _C.FPGA, 11.6, 10.2, _P.INT4, 16),
    # --- CGRAs (near-ASIC efficiency, near-FPGA flexibility) ------------
    AcceleratorRecord("Plasticine", 2017, _C.CGRA, 12.3, 49, _P.FP32, 28),
    AcceleratorRecord("AI Engine tile array", 2021, _C.CGRA, 102, 50, _P.INT8, 7),
    AcceleratorRecord("SambaNova RDU SN10", 2021, _C.CGRA, 300, 400, _P.BF16, 7),
    AcceleratorRecord("Renesas DRP-AI", 2022, _C.CGRA, 6, 3, _P.INT8, 12),
    # --- NPUs with SRAM digital IMC -------------------------------------
    AcceleratorRecord(
        "ST DIMC multi-tile (ISSCC'23)", 2023, _C.NPU_SRAM_IMC, 77.5, 0.25,
        _P.INT4, 18, europe_based=True, tags=("imc", "digital"),
    ),
    AcceleratorRecord(
        "TSMC 7nm DIMC macro", 2021, _C.NPU_SRAM_IMC, 6.6, 0.0075, _P.INT4, 7,
        tags=("imc", "digital", "macro"),
    ),
    AcceleratorRecord(
        "Samsung 28nm SRAM-CIM", 2022, _C.NPU_SRAM_IMC, 5.3, 0.012, _P.INT8, 28,
        tags=("imc", "digital"),
    ),
    # --- NPUs with analog NVM IMC ---------------------------------------
    AcceleratorRecord(
        "ISAAC (RRAM, modeled)", 2016, _C.NPU_RRAM_IMC, 41.4, 65.8, _P.INT8, 32,
        tags=("imc", "analog"),
    ),
    AcceleratorRecord(
        "NeuRRAM", 2022, _C.NPU_RRAM_IMC, 0.54, 0.027, _P.INT4, 130,
        tags=("imc", "analog"),
    ),
    AcceleratorRecord(
        "IBM HERMES PCM core", 2023, _C.NPU_PCM_IMC, 10.5, 1.0, _P.INT8, 14,
        tags=("imc", "analog"),
    ),
    AcceleratorRecord(
        "Fused analog IMC fabric (IBM)", 2021, _C.NPU_PCM_IMC, 63.1, 6.0,
        _P.INT4, 14, tags=("imc", "analog"),
    ),
    # --- RISC-V accelerators (Fig. 7 population) ------------------------
    # The 100 mW - 1 W cluster the paper highlights:
    AcceleratorRecord(
        "GAP8", 2018, _C.RISCV, 0.012, 0.075, _P.INT8, 55,
        europe_based=True, tags=("pulp", "edge"),
    ),
    AcceleratorRecord(
        "GAP9", 2022, _C.RISCV, 0.05, 0.05, _P.INT8, 22,
        europe_based=True, tags=("pulp", "edge"),
    ),
    AcceleratorRecord(
        "Vega", 2021, _C.RISCV, 0.032, 0.049, _P.INT8, 22,
        europe_based=True, tags=("pulp", "edge"),
    ),
    AcceleratorRecord(
        "Kraken", 2022, _C.RISCV, 0.25, 0.30, _P.INT4, 22,
        europe_based=True, tags=("pulp", "snn"),
    ),
    AcceleratorRecord(
        "Marsellus", 2023, _C.RISCV, 0.18, 0.123, _P.INT4, 22,
        europe_based=True, tags=("pulp",),
    ),
    AcceleratorRecord(
        "Darkside", 2022, _C.RISCV, 0.065, 0.122, _P.INT8, 65,
        europe_based=True, tags=("pulp",),
    ),
    AcceleratorRecord(
        "DIANA (hybrid AIMC)", 2022, _C.RISCV, 0.144, 0.132, _P.INT8, 22,
        europe_based=True, tags=("imc", "hybrid"),
    ),
    AcceleratorRecord(
        "Archimedes", 2023, _C.RISCV, 1.2, 0.9, _P.INT8, 22,
        europe_based=True, tags=("pulp", "ar-vr"),
    ),
    AcceleratorRecord(
        "RedMulE cluster", 2023, _C.RISCV, 0.095, 0.065, _P.FP16, 22,
        europe_based=True, tags=("pulp", "tensor"),
    ),
    # The sparse >1 W region (HPC inference) the project targets:
    AcceleratorRecord(
        "Esperanto ET-SoC-1", 2022, _C.RISCV, 139, 20, _P.INT8, 7,
        tags=("manycore",),
    ),
    AcceleratorRecord(
        "Celerity", 2018, _C.RISCV, 0.5, 5.0, _P.INT8, 16, tags=("manycore",),
    ),
    AcceleratorRecord(
        "Occamy (dual chiplet)", 2024, _C.RISCV, 0.75, 27, _P.FP64, 12,
        europe_based=True, tags=("chiplet", "hpc"),
    ),
    AcceleratorRecord(
        "Axelera Metis AIPU", 2024, _C.RISCV, 209.6, 14, _P.INT8, 12,
        europe_based=True, tags=("imc", "edge-server"),
    ),
    AcceleratorRecord(
        "ICSC CU prototype (GF12)", 2024, _C.RISCV, 0.15, 0.1, _P.BF16, 12,
        europe_based=True, tags=("icsc", "flagship2", "compute-unit"),
    ),
]


def load_dataset(platform: Optional[PlatformClass] = None) -> List[AcceleratorRecord]:
    """Return the curated dataset, optionally filtered by *platform*.

    The returned list is a copy; callers may mutate it freely.
    """
    if platform is None:
        return list(_DATASET)
    return [r for r in _DATASET if r.platform is platform]


def riscv_subset() -> List[AcceleratorRecord]:
    """The RISC-V accelerator population plotted in Fig. 7."""
    return load_dataset(PlatformClass.RISCV)


def europe_subset() -> List[AcceleratorRecord]:
    """EU-based designs; Fig. 7's point is that many RISC-V entries are
    European, supporting the project's sovereignty argument."""
    return [r for r in _DATASET if r.europe_based]
