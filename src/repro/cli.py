"""Command-line interface: regenerate paper artifacts from the shell.

``python -m repro <artifact>`` prints the regenerated table/series for
one paper artifact without going through pytest -- the quick way to eyeball
a result or pipe it into another tool.

Artifacts: ``fig1``, ``fig2``, ``fig7``, ``table1``, ``taxonomy`` (alias
of fig2), ``scf``, ``survey-csv``, plus ``faults`` -- a quick
fault-injection resilience sweep (IMC stuck-at cells and hetero
transient-storage faults) over the :mod:`repro.resilience` subsystem --
and ``exec`` -- the parallel evaluation engine demo: an IMC crossbar
campaign fanned out over the process pool with content-addressed result
caching (``--workers``, ``--cells``, ``--cache-dir``, ``--no-cache``).

``profile [demo]`` enables the :mod:`repro.perf` profiler, runs one (or
all) of the short kernel demos -- ``imc``, ``dna``, ``axc``, ``sparta``,
``hls``, ``exec`` -- and prints the timer/counter table.

``serve`` runs the :mod:`repro.serve` micro-batched evaluation service:
``--requests FILE`` serves a JSON array of requests one-shot; without it
a synthetic load (``--workload``, ``--num-requests``, ``--rate``,
``--batch-size``) exercises the service and prints the
latency/throughput point, optionally writing the full metrics snapshot
with ``--out``.  With ``--trace-dir DIR`` the run executes under
:mod:`repro.obs` tracing and writes ``trace.jsonl``, ``ledger.jsonl``
and a Chrome ``trace.chrome.json`` into DIR.

``obs`` inspects such a directory: ``repro obs show <trace_id>``
renders one request's span tree and ledger events, ``repro obs
summary`` aggregates span durations per name, ``repro obs export
--format=chrome`` re-exports the spans as Chrome trace-event JSON.

``campaign`` runs declarative campaign DAGs (:mod:`repro.campaign`)
from a JSON or ``.py`` graph spec: ``repro campaign run spec.json
[--workers N] [--cache PATH] [--checkpoint PATH] [--serve]
[--trace-dir DIR]``, ``resume`` to continue against a checkpoint,
``status`` to inspect progress, ``example`` to emit the worked
composite spec (a DSE exploration feeding a hetero campaign feeding a
Pareto reduction).

``capacity`` answers the sizing question directly from the
:mod:`repro.serve.capacity` model: given a measured per-shard
throughput and service-time p99 (``--shard-rps`` / ``--shard-p99-ms``,
or ``--from-report BENCH_scale.json``), print shards needed and cost
per million requests at a target p99 over a load sweep.  ``repro serve
--capacity-report`` appends the same table to a live serving run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.tables import Table


def _cmd_fig1() -> str:
    from repro.survey import class_statistics, efficiency_trend, load_dataset

    records = load_dataset()
    table = Table(
        ["platform class", "designs", "min TOPS/W", "median TOPS/W",
         "max TOPS/W"],
        title="Fig. 1 -- SotA AI accelerators by platform class",
    )
    for s in class_statistics(records):
        table.add_row(
            [s.platform.value, s.count, s.min_tops_per_watt,
             s.median_tops_per_watt, s.max_tops_per_watt]
        )
    trend = efficiency_trend(records)
    return (
        table.render()
        + f"\ntrend: x{trend.growth_per_year:.2f}/year "
        f"(doubling every {trend.doubling_years:.1f} years)"
    )


def _cmd_fig2() -> str:
    from repro.imc.taxonomy import taxonomy_table

    table = Table(
        ["architecture", "weights (pJ)", "activations (pJ)",
         "compute (pJ)", "total (pJ)"],
        title="Fig. 2 -- 512x512 MVM energy per organization",
    )
    for row in taxonomy_table():
        table.add_row(
            [row["architecture"], row["weight_movement_pj"],
             row["activation_movement_pj"], row["compute_pj"],
             row["total_pj"]]
        )
    return table.render()


def _cmd_fig7() -> str:
    from repro.survey import power_band_histogram, riscv_subset

    table = Table(
        ["power band (W)", "designs"],
        title="Fig. 7 -- RISC-V DL accelerators per power band",
    )
    for (lo, hi), count in sorted(power_band_histogram(
            riscv_subset()).items()):
        table.add_row([f"[{lo:g}, {hi:g})", count])
    return table.render()


def _cmd_table1() -> str:
    from repro.axc.fpga_cost import table_i_rows

    table = Table(
        ["method", "bits", "Fmax (MHz)", "thr (Mpx/s)", "LUTs", "DSPs",
         "power (W)", "eff (Mpx/s/W)"],
        title="Table I -- HTCONV vs FPGA SotA",
    )
    for row in table_i_rows():
        table.add_row(
            [row.method, row.bitwidth, row.fmax_mhz,
             row.throughput_mpixels, row.resources.luts,
             row.resources.dsps,
             "NA" if row.power_w is None else row.power_w,
             "NA" if row.energy_efficiency is None
             else round(row.energy_efficiency, 1)]
        )
    return table.render()


def _cmd_scf() -> str:
    from repro.core.units import GIGA
    from repro.scf.fabric import ScalableComputeFabric
    from repro.scf.interconnect import AXIHierarchy, NocMesh
    from repro.scf.workloads import TransformerConfig

    workload = TransformerConfig(seq_len=2048)
    table = Table(
        ["CUs", "NoC GFLOPS", "NoC eff", "AXI GFLOPS", "AXI eff"],
        title="Fig. 8 -- SCF scale-up (transformer block)",
    )
    noc = ScalableComputeFabric(interconnect=NocMesh())
    axi = ScalableComputeFabric(interconnect=AXIHierarchy())
    for n in (1, 4, 16, 64):
        a = noc.run_block(workload, n)
        b = axi.run_block(workload, n)
        table.add_row(
            [n, a.sustained_flops / GIGA, a.parallel_efficiency,
             b.sustained_flops / GIGA, b.parallel_efficiency]
        )
    return table.render()


def _cmd_faults() -> str:
    import numpy as np

    from repro.hetero.campaign import run_resilient_campaign
    from repro.hetero.workload import SegmentationWorkload
    from repro.imc.devices import NVMDevice, RRAM_PARAMS
    from repro.imc.program_verify import program_and_verify
    from repro.resilience import (
        BackoffPolicy,
        FaultInjector,
        FaultModel,
        ResiliencePolicy,
    )

    workload = SegmentationWorkload(num_volumes=16, epochs=1)
    resilience = ResiliencePolicy(backoff=BackoffPolicy(max_attempts=4))
    hetero = Table(
        ["transient fault rate", "cells ok", "cells failed", "attempts",
         "backoff (s)"],
        title="Resilience -- hetero campaign under storage faults",
    )
    for rate in (0.0, 0.1, 0.2, 0.4):
        injector = FaultInjector(
            FaultModel(storage_transient_rate=rate), seed=7
        )
        report = run_resilient_campaign(
            workload, injector=injector, resilience=resilience
        )
        hetero.add_row(
            [rate, len(report.cells), len(report.errors),
             report.total_attempts, round(report.total_backoff_s, 3)]
        )

    imc = Table(
        ["stuck-cell fraction", "stuck cells", "converged fraction",
         "final RMS error"],
        title="Resilience -- IMC program-and-verify under stuck-at faults",
    )
    rng = np.random.default_rng(7)
    targets = rng.uniform(RRAM_PARAMS.g_min, RRAM_PARAMS.g_max, (32, 32))
    for fraction in (0.0, 0.02, 0.05, 0.1):
        device = NVMDevice(RRAM_PARAMS, (32, 32), seed=7)
        injector = FaultInjector(
            FaultModel(imc_stuck_fraction=fraction), seed=7
        )
        injector.inject_stuck_cells(device)
        result = program_and_verify(device, targets)
        imc.add_row(
            [fraction, device.stuck_cell_count,
             round(result.converged_fraction, 3),
             round(result.final_rms_error, 4)]
        )
    return hetero.render() + "\n\n" + imc.render()


def _cmd_exec(args: "argparse.Namespace") -> str:
    import os
    import time

    from repro.exec import ParallelEvaluator, ResultCache
    from repro.imc.sweep import crossbar_sweep, sweep_grid

    workers = args.workers or os.cpu_count() or 1
    cache = None
    if not args.no_cache:
        path = (
            os.path.join(args.cache_dir, "exec-cache.json")
            if args.cache_dir
            else None
        )
        cache = ResultCache(path=path)
    specs = sweep_grid(args.cells, rows=48, cols=48, num_inputs=8)

    table = Table(
        ["pass", "workers", "cells", "wall (s)", "cache hits",
         "cache misses", "hit rate"],
        title="Parallel evaluation engine -- IMC crossbar campaign",
    )

    start = time.perf_counter()
    serial = crossbar_sweep(specs)
    serial_s = time.perf_counter() - start
    table.add_row(["serial", 1, len(specs), round(serial_s, 3),
                   "-", "-", "-"])

    engine = None
    for label in ("parallel (cold)", "parallel (warm)"):
        engine = ParallelEvaluator(
            max_workers=workers, cache=cache, transport=args.transport
        )
        before = cache.stats() if cache is not None else None
        start = time.perf_counter()
        result = crossbar_sweep(specs, parallel=engine)
        wall = time.perf_counter() - start
        if result != serial:
            raise RuntimeError("parallel sweep diverged from serial run")
        if cache is not None:
            after = cache.stats()
            hits = after["hits"] - before["hits"]
            misses = after["misses"] - before["misses"]
            rate = hits / (hits + misses) if hits + misses else 0.0
            table.add_row([label, workers, len(specs), round(wall, 3),
                           hits, misses, round(rate, 3)])
        else:
            table.add_row([label, workers, len(specs), round(wall, 3),
                           "off", "off", "-"])
    if cache is not None:
        cache.close()
    footer = "results identical across serial/parallel/cached passes"
    if engine is not None:
        footer += (
            f"; transport={args.transport} "
            f"(last map used {engine.last_transport or 'none: no pool work'})"
        )
    if args.cache_dir:
        footer += f"; persistent cache at {args.cache_dir}"
    return table.render() + "\n" + footer


#: File names inside a ``--trace-dir`` directory; shared by the serve
#: exporter and the ``repro obs`` reader.
TRACE_FILE = "trace.jsonl"
LEDGER_FILE = "ledger.jsonl"
CHROME_FILE = "trace.chrome.json"
METRICS_FILE = "metrics.json"
FLIGHT_FILE = "flight.jsonl"


def _export_observability(trace_dir: str, recorder=None) -> str:
    """Write the collected spans/events/Chrome trace plus the metrics
    snapshot (and, when a flight *recorder* ran, its sample ring) into
    *trace_dir*; returns a one-line footer describing what landed
    where."""
    import json
    import os

    from repro import obs

    tracer = obs.get_tracer()
    ledger = obs.get_ledger()
    os.makedirs(trace_dir, exist_ok=True)
    spans = tracer.export_jsonl(os.path.join(trace_dir, TRACE_FILE))
    events = ledger.export_jsonl(os.path.join(trace_dir, LEDGER_FILE))
    chrome_path = os.path.join(trace_dir, CHROME_FILE)
    with open(chrome_path, "w", encoding="utf-8") as fh:
        json.dump(tracer.to_chrome(), fh, indent=2, sort_keys=True)
    with open(
        os.path.join(trace_dir, METRICS_FILE), "w", encoding="utf-8"
    ) as fh:
        json.dump(
            obs.get_metrics().snapshot(), fh, indent=2, sort_keys=True
        )
    footer = (
        f"trace: {spans} spans / {events} events -> {trace_dir} "
        f"(chrome: {chrome_path}; inspect with 'repro obs summary "
        f"--trace-dir {trace_dir}')"
    )
    if recorder is not None:
        samples = recorder.export_jsonl(
            os.path.join(trace_dir, FLIGHT_FILE)
        )
        footer += f"; flight recorder: {samples} samples/dumps"
    return footer


def _capacity_table(report: dict, title: str) -> str:
    """Render a :func:`repro.serve.capacity.capacity_report` block as a
    table (shared by ``repro capacity`` and ``serve --capacity-report``)."""
    model = report["model"]
    currency = report["cost"]["currency"]
    table = Table(
        ["offered (rps)", "shards", "util", "p99 (ms)",
         f"{currency}/h", f"{currency}/1M req"],
        title=title,
    )
    for plan in report["plans"]:
        if plan["feasible"]:
            table.add_row(
                [
                    round(plan["offered_rps"], 1),
                    plan["shards"],
                    round(plan["utilization"], 3),
                    round(plan["modeled_p99_s"] * 1000, 2),
                    round(plan["cost_per_hour"], 2),
                    round(plan["cost_per_million"], 4),
                ]
            )
        else:
            table.add_row(
                [round(plan["offered_rps"], 1), "-", "-", "-", "-",
                 "infeasible"]
            )
    footer = (
        f"model: {model['per_shard_rps']:.1f} rps/shard, service p99 "
        f"{model['service_p99_s'] * 1000:.2f} ms, target p99 "
        f"{report['target_p99_s'] * 1000:.1f} ms, max utilization "
        f"{model['max_utilization']:g}"
    )
    return table.render() + "\n" + footer


def _cost_model(args: "argparse.Namespace"):
    from repro.serve import ShardCostModel

    return ShardCostModel(
        shard_cost_per_hour=args.shard_cost,
        cluster_overhead_per_hour=args.overhead_cost,
    )


def _cmd_capacity(args: "argparse.Namespace") -> str:
    """``repro capacity``: answer "how many shards and at what cost"
    from measured numbers -- either ``--shard-rps``/``--shard-p99-ms``
    or a ``BENCH_scale.json`` produced by ``benchmarks/bench_scale.py``
    (``--from-report``)."""
    import json

    from repro.core.errors import ValidationError
    from repro.serve import CapacityModel, capacity_report

    if args.from_report:
        with open(args.from_report, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        block = report.get("capacity") or report
        model_json = block.get("model")
        if not model_json:
            raise ValidationError(
                f"{args.from_report} has no capacity model block"
            )
        model = CapacityModel(
            model_json["per_shard_rps"],
            model_json["service_p99_s"],
            efficiency={
                int(k): v
                for k, v in (model_json.get("efficiency") or {}).items()
            },
            max_utilization=model_json.get("max_utilization", 0.95),
        )
        source = args.from_report
    else:
        if not args.shard_rps or not args.shard_p99_ms:
            raise ValidationError(
                "capacity needs --shard-rps and --shard-p99-ms "
                "(or --from-report BENCH_scale.json)"
            )
        model = CapacityModel(args.shard_rps, args.shard_p99_ms / 1000.0)
        source = "command line"
    if args.offered_rps:
        loads = [float(part) for part in args.offered_rps.split(",")]
    else:
        loads = [
            model.per_shard_rps * mult for mult in (0.5, 1, 2, 4, 8)
        ]
    target = (args.target_p99_ms or 250.0) / 1000.0
    block = capacity_report(
        model,
        offered_rps=loads,
        target_p99_s=target,
        cost=_cost_model(args),
        max_shards=args.max_shards,
    )
    body = _capacity_table(
        block, f"repro capacity -- model from {source}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(block, fh, indent=2, sort_keys=True)
        body += f"\ncapacity report written to {args.out}"
    return body


def _serve_capacity_report(
    args: "argparse.Namespace",
    achieved_rps: float,
    p99_s: float,
    shards: int,
) -> dict:
    """Capacity block for a live ``repro serve`` run: the measured
    point becomes the per-shard model, swept over load multiples."""
    from repro.serve import CapacityModel, capacity_report

    model = CapacityModel(
        max(achieved_rps, 1e-9) / max(1, shards), max(p99_s, 1e-9)
    )
    target = (
        args.target_p99_ms / 1000.0
        if args.target_p99_ms
        else 5.0 * p99_s
    )
    loads = [achieved_rps * mult for mult in (0.5, 1.0, 2.0, 4.0)]
    return capacity_report(
        model,
        offered_rps=loads,
        target_p99_s=target,
        cost=_cost_model(args),
    )


def _cmd_serve(args: "argparse.Namespace") -> str:
    import json

    from repro.core.api import get_workload, workload_names
    from repro.serve import (
        generate_requests,
        load_requests,
        run_load,
        serve_requests,
        EvaluationService,
    )

    recorder = None
    if args.trace_dir:
        from repro import obs
        from repro.obs.recorder import FlightRecorder

        obs.enable()
        obs.get_tracer().reset()
        obs.get_ledger().reset()
        obs.get_metrics().reset()
        recorder = FlightRecorder()
        recorder.watch_ledger()
        recorder.start()

    batch_size = args.batch_size
    if args.requests:
        with open(args.requests, "r", encoding="utf-8") as fh:
            requests = load_requests(fh.read())
        results, snapshot = serve_requests(
            requests,
            batch_size=batch_size,
            parallel=args.workers,
            cache=args.cache_dir and f"{args.cache_dir}/serve-cache.json",
        )
        measured = (
            float(snapshot.get("throughput_rps") or 0.0),
            float((snapshot.get("latency_s") or {}).get("p99") or 0.0),
            1,
        )
        table = Table(
            ["#", "workload", "status", "digest", "wall (ms)", "metrics"],
            title=f"repro serve -- {len(requests)} request(s) "
            f"from {args.requests}",
        )
        for i, (request, result) in enumerate(zip(requests, results)):
            head = sorted(result.metrics)[:3]
            table.add_row(
                [
                    i,
                    request.workload,
                    result.status,
                    result.config_digest[:12],
                    round(result.wall_time_s * 1000, 2),
                    ", ".join(
                        f"{k}={result.metrics[k]}" for k in head
                    ) or result.error,
                ]
            )
    else:
        workload = get_workload(args.workload)
        requests = generate_requests(
            workload,
            args.num_requests,
            pool_size=args.pool,
            seed=args.seed,
        )
        if (args.shards and args.shards > 1) or args.backend == "process":
            from repro.serve import ShardCluster

            service = ShardCluster(
                num_shards=args.shards or 2,
                backend=args.backend,
                batch_size=batch_size,
                max_queue=max(1, len(requests)),
                parallel=args.workers,
                cache=args.cache_dir and f"{args.cache_dir}/serve-cache.json",
            )
            service.wait_ready()
        else:
            service = EvaluationService(
                batch_size=batch_size,
                max_queue=max(1, len(requests)),
                parallel=args.workers,
                cache=args.cache_dir and f"{args.cache_dir}/serve-cache.json",
            )
        if recorder is not None:
            if hasattr(service, "gauges"):
                recorder.add_source("serve", service.gauges)
        try:
            point = run_load(service, requests, rate_rps=args.rate)
            snapshot = service.snapshot()
        finally:
            service.shutdown()
        measured = (
            float(point["achieved_rps"]),
            float(point["latency_s"]["p99"]),
            snapshot.get("shards") or 1,
        )
        table = Table(
            ["requests", "offered (rps)", "achieved (rps)", "p50 (ms)",
             "p95 (ms)", "p99 (ms)", "errors"],
            title=f"repro serve -- synthetic load, workload "
            f"{workload.name!r} (registered: {len(workload_names())})",
        )
        latency = point["latency_s"]
        table.add_row(
            [
                point["num_requests"],
                "burst" if args.rate is None else round(args.rate, 1),
                round(point["achieved_rps"], 1),
                round(latency["p50"] * 1000, 2),
                round(latency["p95"] * 1000, 2),
                round(latency["p99"] * 1000, 2),
                point["errors"],
            ]
        )
    evaluations = snapshot["evaluations"]
    footer = (
        f"batches: {snapshot['batches']['count']} "
        f"(mean occupancy {snapshot['batches']['mean_occupancy']:.2f}); "
        f"computed {evaluations['computed']}, "
        f"deduped {evaluations['deduped']}, "
        f"cache hits {evaluations['cache_hits']}"
    )
    if "shards" in snapshot:
        footer += (
            f"; shards: {snapshot['shards']} "
            f"(restarts {snapshot['restarts']}, "
            f"replayed {snapshot['replayed']})"
        )
    body = table.render() + "\n" + footer
    if args.capacity_report:
        achieved, p99_s, shard_count = measured
        if achieved > 0 and p99_s > 0:
            report = _serve_capacity_report(
                args, achieved, p99_s, shard_count
            )
            snapshot = dict(snapshot)
            snapshot["capacity"] = report
            body += "\n\n" + _capacity_table(
                report,
                f"capacity plan -- measured {achieved:.1f} rps on "
                f"{shard_count} shard(s)",
            )
        else:
            body += "\ncapacity report skipped: no completed requests"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        body += f"\nmetrics snapshot written to {args.out}"
    if args.trace_dir:
        from repro import obs

        if recorder is not None:
            recorder.stop()
        body += "\n" + _export_observability(args.trace_dir, recorder)
        obs.disable()
    return body


def _cmd_chaos(args: "argparse.Namespace") -> str:
    """``repro chaos``: one seeded chaos campaign against a shard
    cluster -- shard kills, delays and bursts injected at deterministic
    request indices, exactly-once completion asserted in the footer."""
    import json

    from repro.core.api import get_workload
    from repro.resilience import ChaosPolicy
    from repro.serve import generate_requests, run_chaos_campaign

    workload = get_workload(args.workload)
    requests = generate_requests(
        workload,
        args.num_requests,
        pool_size=args.pool,
        seed=args.seed,
    )
    shards = args.shards or 4
    policy = ChaosPolicy.random(
        args.seed, len(requests), shards,
        kills=args.kills, delays=2, bursts=1,
    )
    results, report = run_chaos_campaign(
        requests,
        policy,
        num_shards=shards,
        batch_size=args.batch_size,
        parallel=args.workers,
        cache=args.cache_dir and f"{args.cache_dir}/serve-cache.json",
    )
    table = Table(
        ["requests", "shards", "kills", "lost", "duplicated", "errors",
         "restarts", "replayed", "p99 (ms)"],
        title=f"repro chaos -- workload {workload.name!r}, "
        f"seed {args.seed}",
    )
    table.add_row(
        [
            report["num_requests"],
            shards,
            len(report["kills"]),
            report["lost"],
            report["duplicate_results"],
            report["errors"],
            report["restarts"],
            report["replayed"],
            round(report["latency_s"]["p99"] * 1000, 2),
        ]
    )
    survived = report["lost"] == 0 and report["duplicate_results"] == 0
    footer = (
        "exactly-once: "
        + ("PASS" if survived else "FAIL")
        + f" (completed {report['completed']}/{report['num_requests']}"
        f" + {report['extras']} burst duplicates; schedule: "
        + ", ".join(
            f"{e['action']}@{e['at_request']}" for e in report["policy"]
        )
        + ")"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        footer += f"; chaos report written to {args.out}"
    return table.render() + "\n" + footer


#: Default SLO specs for ``repro obs slo`` when no ``--spec`` file is
#: given: generic serving health objectives.
DEFAULT_SLO_SPECS = (
    {"name": "latency-p99", "objective": "p99_latency", "target": 0.5},
    {"name": "errors", "objective": "error_rate", "target": 0.05},
    {"name": "availability", "objective": "availability",
     "target": 0.99},
)


def _load_obs_file(loader, path: str, what: str):
    """Satellite guard: a corrupt or unreadable observability artifact
    becomes a one-line error + nonzero exit, not a traceback."""
    try:
        return loader(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read {what} at {path}: {exc}", file=sys.stderr)
        return None


def _obs_main(argv: List[str]) -> int:
    """The ``repro obs`` subcommand family (its own parser: the obs
    verbs take a trace directory, not a paper artifact)."""
    import json
    import os

    from repro.obs import (
        chrome_trace,
        critical_path_report,
        compare_reports,
        load_flight_jsonl,
        load_ledger_jsonl,
        load_trace_jsonl,
        prometheus_text,
        render_summary,
        render_top,
        render_trace,
        select_trace,
    )
    from repro.obs.slo import SLOSpec, evaluate_slos

    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Inspect traces recorded by 'repro serve "
        "--trace-dir' (or any repro.obs export).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    show = sub.add_parser(
        "show", help="render one trace's span tree and ledger events"
    )
    show.add_argument("trace_id", help="trace id (unique prefix accepted)")
    summary = sub.add_parser(
        "summary", help="aggregate span durations across all traces"
    )
    export = sub.add_parser(
        "export", help="re-export collected spans"
    )
    export.add_argument(
        "--format", choices=("chrome", "jsonl", "prom"),
        default="chrome",
        help="chrome/jsonl re-export the spans; prom renders the "
        "exported metrics snapshot as Prometheus text exposition",
    )
    export.add_argument(
        "--out", default=None,
        help="output file (default: stdout)",
    )
    top = sub.add_parser(
        "top",
        help="slowest requests with their critical-path phase split",
    )
    top.add_argument(
        "--top", type=int, default=10, help="how many requests to list"
    )
    slo = sub.add_parser(
        "slo",
        help="evaluate SLO burn rates over the flight-recorder samples",
    )
    slo.add_argument(
        "--spec", default=None,
        help="JSON file with a list of SLO spec objects "
        "(default: built-in latency/error/availability objectives)",
    )
    critical = sub.add_parser(
        "critical-path",
        help="aggregate critical-path phase report "
        "(optionally vs a baseline trace dir)",
    )
    critical.add_argument(
        "--top", type=int, default=10, help="how many requests to list"
    )
    critical.add_argument(
        "--baseline", default=None,
        help="another trace dir to attribute a regression against",
    )
    for verb in (show, summary, export, top, slo, critical):
        verb.add_argument(
            "--trace-dir", default="obs",
            help="directory written by 'repro serve --trace-dir' "
            "(default: ./obs)",
        )
    args = parser.parse_args(argv)

    if args.verb == "export" and args.format == "prom":
        metrics_path = os.path.join(args.trace_dir, METRICS_FILE)
        if not os.path.exists(metrics_path):
            print(
                f"no metrics snapshot at {metrics_path}; record one "
                f"with 'repro serve --trace-dir {args.trace_dir}'",
                file=sys.stderr,
            )
            return 1

        def _load_metrics(path):
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)

        snapshot = _load_obs_file(
            _load_metrics, metrics_path, "metrics snapshot"
        )
        if snapshot is None:
            return 1
        payload = prometheus_text(snapshot)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload)
            print(f"wrote {args.out}")
        else:
            print(payload, end="")
        return 0

    if args.verb == "slo":
        flight_path = os.path.join(args.trace_dir, FLIGHT_FILE)
        if not os.path.exists(flight_path):
            print(
                f"no flight recording at {flight_path}; record one "
                f"with 'repro serve --trace-dir {args.trace_dir}'",
                file=sys.stderr,
            )
            return 1
        flight = _load_obs_file(
            load_flight_jsonl, flight_path, "flight recording"
        )
        if flight is None:
            return 1
        spec_dicts = DEFAULT_SLO_SPECS
        if args.spec:
            def _load_specs(path):
                with open(path, "r", encoding="utf-8") as fh:
                    return json.load(fh)

            spec_dicts = _load_obs_file(
                _load_specs, args.spec, "SLO spec file"
            )
            if spec_dicts is None:
                return 1
        specs = [SLOSpec.from_json(d) for d in spec_dicts]
        statuses = evaluate_slos(specs, flight["samples"])
        breached = False
        print(
            f"{'slo':<16} {'objective':<14} {'target':>10} "
            f"{'state':<9} burn/window"
        )
        for status in statuses:
            burns = "  ".join(
                f"{window:g}s={result['burn']:.2f}x"
                for window, result in sorted(status["windows"].items())
            )
            print(
                f"{status['name']:<16} {status['objective']:<14} "
                f"{status['target']:>10g} {status['state']:<9} {burns}"
            )
            breached = breached or status["state"] == "breached"
        dumps = flight.get("dumps", [])
        print(
            f"samples: {len(flight['samples'])}   "
            f"flight dumps: {len(dumps)}"
        )
        return 2 if breached else 0

    trace_path = os.path.join(args.trace_dir, TRACE_FILE)
    if not os.path.exists(trace_path):
        print(
            f"no trace at {trace_path}; record one with "
            f"'repro serve --trace-dir {args.trace_dir}'",
            file=sys.stderr,
        )
        return 1
    spans = _load_obs_file(load_trace_jsonl, trace_path, "trace")
    if spans is None:
        return 1
    ledger_path = os.path.join(args.trace_dir, LEDGER_FILE)
    events = []
    if os.path.exists(ledger_path):
        events = _load_obs_file(
            load_ledger_jsonl, ledger_path, "ledger"
        )
        if events is None:
            return 1

    if args.verb == "show":
        selected = select_trace(spans, args.trace_id)
        if not selected:
            known = sorted({s["trace_id"] for s in spans})
            print(
                f"trace {args.trace_id!r} not found "
                f"(known: {', '.join(known) or 'none'})",
                file=sys.stderr,
            )
            return 1
        tid = selected[0]["trace_id"]
        print(f"trace {tid}")
        print(
            render_trace(
                selected,
                [e for e in events if e.get("trace_id") == tid],
            )
        )
    elif args.verb == "summary":
        print(render_summary(spans, events))
    elif args.verb == "top":
        report = critical_path_report(spans, top=args.top)
        samples = []
        flight_path = os.path.join(args.trace_dir, FLIGHT_FILE)
        if os.path.exists(flight_path):
            flight = _load_obs_file(
                load_flight_jsonl, flight_path, "flight recording"
            )
            if flight is None:
                return 1
            samples = flight["samples"]
        print(render_top(report, samples))
    elif args.verb == "critical-path":
        report = critical_path_report(spans, top=args.top)
        if args.baseline:
            base_path = os.path.join(args.baseline, TRACE_FILE)
            if not os.path.exists(base_path):
                print(
                    f"no baseline trace at {base_path}",
                    file=sys.stderr,
                )
                return 1
            base_spans = _load_obs_file(
                load_trace_jsonl, base_path, "baseline trace"
            )
            if base_spans is None:
                return 1
            baseline = critical_path_report(base_spans, top=args.top)
            report = dict(report)
            report["vs_baseline"] = compare_reports(baseline, report)
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        if args.format == "chrome":
            payload = json.dumps(
                chrome_trace(spans), indent=2, sort_keys=True
            )
        else:
            payload = "\n".join(
                json.dumps(s, sort_keys=True) for s in spans
            )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.out}")
        else:
            print(payload)
    return 0


def _load_campaign_graph(path: str):
    """Load a campaign spec: ``.json`` files through
    :meth:`~repro.campaign.CampaignGraph.from_json`, ``.py`` files by
    executing them and taking their ``GRAPH`` object (or calling their
    ``build()``)."""
    import json
    import runpy

    from repro.campaign import CampaignGraph
    from repro.core.errors import ValidationError

    if path.endswith(".py"):
        namespace = runpy.run_path(path)
        graph = namespace.get("GRAPH")
        if graph is None and callable(namespace.get("build")):
            graph = namespace["build"]()
        if not isinstance(graph, CampaignGraph):
            raise ValidationError(
                f"{path} must define a CampaignGraph as GRAPH or "
                "return one from build()"
            )
        return graph
    with open(path, "r", encoding="utf-8") as fh:
        return CampaignGraph.from_json(json.load(fh))


def _campaign_main(argv: List[str]) -> int:
    """The ``repro campaign`` subcommand family: run/resume a declarative
    campaign graph spec, inspect a checkpoint's progress, or emit the
    worked composite example (DSE -> hetero -> Pareto)."""
    import json

    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Run declarative campaign DAGs (repro.campaign) "
        "from a JSON or .py graph spec.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run = sub.add_parser("run", help="execute a campaign graph spec")
    resume = sub.add_parser(
        "resume",
        help="re-execute a spec against its checkpoint (completed "
        "nodes are restored, not re-run)",
    )
    status = sub.add_parser(
        "status", help="show a spec's progress against a checkpoint"
    )
    example = sub.add_parser(
        "example",
        help="print the composite example graph (DSE -> hetero -> "
        "Pareto) as a runnable JSON spec",
    )
    for verb in (run, resume, status):
        verb.add_argument("spec", help="campaign graph spec (.json or .py)")
    for verb in (run, resume):
        verb.add_argument(
            "--workers", type=int, default=None,
            help="evaluate each layer over a process pool this wide "
            "(default: serial)",
        )
        verb.add_argument(
            "--cache", default=None,
            help="path for the content-addressed result cache",
        )
        verb.add_argument(
            "--serve", action="store_true",
            help="route evaluations through a live EvaluationService "
            "(admission control, micro-batching, dedup)",
        )
        verb.add_argument(
            "--batch-size", type=int, default=8,
            help="--serve: micro-batch size",
        )
        verb.add_argument(
            "--trace-dir", default=None,
            help="record the run under repro.obs tracing and write "
            "trace.jsonl / ledger.jsonl / trace.chrome.json here",
        )
        verb.add_argument(
            "--out", default=None,
            help="write the campaign run report JSON here",
        )
    run.add_argument(
        "--checkpoint", default=None,
        help="JSON checkpoint store for node results (enables resume)",
    )
    resume.add_argument(
        "--checkpoint", required=True,
        help="JSON checkpoint store written by a previous run",
    )
    status.add_argument("--checkpoint", required=True)
    example.add_argument(
        "--out", default=None,
        help="write the example spec here (default: stdout)",
    )
    args = parser.parse_args(argv)

    if args.verb == "example":
        from repro.campaign import composite_campaign_graph

        payload = json.dumps(
            composite_campaign_graph().to_json(), indent=2, sort_keys=True
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.out}")
        else:
            print(payload)
        return 0

    graph = _load_campaign_graph(args.spec)

    if args.verb == "status":
        from repro.resilience import CheckpointStore

        store = CheckpointStore(args.checkpoint)
        done = set(store.completed_keys())
        table = Table(
            ["node", "kind", "state"],
            title=f"repro campaign status -- {graph.name} "
            f"({len(done)} checkpointed record(s))",
        )
        completed = 0
        for node in graph.nodes:
            key = getattr(node, "key", None) or node.name
            checkpointed = key in done or any(
                k.startswith(f"{node.name}|") for k in done
            )
            state = "done" if checkpointed else (
                "recomputed" if node.kind == "reduce" else "pending"
            )
            completed += int(checkpointed)
            table.add_row([node.name, node.kind, state])
        print(table.render())
        print(f"{completed}/{len(graph)} nodes checkpointed")
        return 0

    from repro.campaign import GraphRunner

    if args.trace_dir:
        from repro import obs

        obs.enable()
        obs.get_tracer().reset()
        obs.get_ledger().reset()

    checkpoint = None
    if args.checkpoint:
        from repro.resilience import CheckpointStore

        checkpoint = CheckpointStore(args.checkpoint)
    service = None
    try:
        if args.serve:
            from repro.serve import EvaluationService

            service = EvaluationService(
                batch_size=args.batch_size,
                max_queue=max(16, 2 * len(graph)),
                parallel=args.workers,
                cache=args.cache,
            )
            runner = GraphRunner(service=service, checkpoint=checkpoint)
        else:
            runner = GraphRunner(
                parallel=args.workers, cache=args.cache,
                checkpoint=checkpoint,
            )
        report = runner.run(graph)
    finally:
        if service is not None:
            service.shutdown()

    counts = report.counts()
    table = Table(
        ["node", "kind", "status", "resumed", "attempts", "backtracks",
         "detail"],
        title=f"repro campaign {args.verb} -- {graph.name} "
        f"({len(report.layers)} layer(s))",
    )
    for name, result in report.results.items():
        detail = result.error or ""
        if result.ok and result.kind == "eval":
            head = sorted(result.value.metrics)[:2]
            detail = ", ".join(
                f"{k}={result.value.metrics[k]}" for k in head
            )
        table.add_row(
            [name, result.kind, result.status, "yes" if result.resumed
             else "", result.attempts, result.backtracks, detail]
        )
    body = table.render()
    body += (
        f"\n{counts['ok']}/{counts['nodes']} ok, "
        f"{counts['error']} error(s), {counts['skipped']} skipped, "
        f"{counts['resumed']} resumed, "
        f"{counts['backtracks']} backtrack(s)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        body += f"\nrun report written to {args.out}"
    if args.trace_dir:
        from repro import obs

        body += "\n" + _export_observability(args.trace_dir)
        obs.disable()
    print(body)
    return 0 if report.ok else 1


def _demo_imc() -> None:
    import numpy as np

    from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig

    xbar = AnalogCrossbar(CrossbarConfig(rows=32, cols=32), seed=11)
    rng = np.random.default_rng(11)
    xbar.program_weights(rng.uniform(-1, 1, (32, 32)))
    xbar.mvm_batch(rng.uniform(-1, 1, (16, 32)))
    for x in rng.uniform(-1, 1, (4, 32)):
        xbar.mvm(x)


def _demo_dna() -> None:
    import numpy as np

    from repro.dna.ecc import ReedSolomonCodec
    from repro.dna.editdistance import levenshtein_banded

    rng = np.random.default_rng(12)
    reads = [
        "".join("ACGT"[i] for i in rng.integers(0, 4, 400))
        for _ in range(12)
    ]
    for a in reads[:6]:
        for b in reads[6:]:
            levenshtein_banded(a, b, band=24)
    codec = ReedSolomonCodec(255, 223)
    for _ in range(8):
        message = bytes(int(v) for v in rng.integers(0, 256, 223))
        codeword = bytearray(codec.encode(message))
        codeword[3] ^= 0xA5
        codec.decode(bytes(codeword))


def _demo_axc() -> None:
    import numpy as np

    from repro.axc.htconv import FovealRegion, htconv_x2

    rng = np.random.default_rng(13)
    x = rng.normal(size=(8, 24, 24))
    kernel = rng.normal(size=(8, 3, 3))
    fovea = FovealRegion.centered(24, 24, 0.25)
    for _ in range(4):
        htconv_x2(x, kernel, fovea)


def _demo_sparta() -> None:
    from repro.sparta.kernels import bfs_tasks, random_graph
    from repro.sparta.simulator import simulate

    region = bfs_tasks(random_graph(128, seed=14), seed=14)
    simulate(region)
    simulate(region, enable_cache=False, memory_latency=200)
    # Compiled tier: either a jit.compile timer (numba installed) or a
    # jit.fallback counter shows up in the profile table.
    simulate(region, impl="jit")


def _demo_hls() -> None:
    from repro.hls.ir import OpKind
    from repro.hls.kernels import _gemm_body
    from repro.hls.scheduling import schedule_list

    body = _gemm_body(unroll_k=8)
    for muls in (1, 2, 4):
        schedule_list(body, {OpKind.MUL: muls, OpKind.ADD: 2})


def _exec_demo_probe(task: dict) -> float:
    """Reduce the demo map's shared payload (module-level: the process
    pool pickles it by reference)."""
    return float(task["payload"][::512].sum())


def _demo_exec() -> None:
    import numpy as np

    from repro.exec import ParallelEvaluator, ResultCache
    from repro.imc.sweep import crossbar_sweep, sweep_grid

    cache = ResultCache()
    specs = sweep_grid(6, rows=24, cols=24, num_inputs=4)
    crossbar_sweep(specs, cache=cache)  # cold: all misses
    crossbar_sweep(specs, cache=cache)  # warm: all hits
    # Zero-copy transport: four tasks sharing one 2 MB payload, so the
    # shm.register / shm.encode / shm.attach timers become visible.
    engine = ParallelEvaluator(
        max_workers=2, mode="process", transport="shm"
    )
    payload = np.random.default_rng(15).standard_normal(1 << 18)
    tasks = [{"payload": payload, "cell": i} for i in range(4)]
    try:
        engine.map(_exec_demo_probe, tasks)
    finally:
        engine.arena.close()


_PROFILE_DEMOS = {
    "imc": _demo_imc,
    "dna": _demo_dna,
    "axc": _demo_axc,
    "sparta": _demo_sparta,
    "hls": _demo_hls,
    "exec": _demo_exec,
}


def _cmd_profile(args: "argparse.Namespace") -> str:
    from repro.perf import disable_profiling, enable_profiling

    names = [args.demo] if args.demo else sorted(_PROFILE_DEMOS)
    profiler = enable_profiling()
    profiler.reset()
    try:
        for name in names:
            with profiler.timer(name):
                _PROFILE_DEMOS[name]()
    finally:
        disable_profiling()
    return profiler.render_table()


def _cmd_survey_csv() -> str:
    from repro.survey import load_dataset
    from repro.survey.io import to_csv

    return to_csv(load_dataset()).rstrip()


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "taxonomy": _cmd_fig2,
    "fig7": _cmd_fig7,
    "table1": _cmd_table1,
    "scf": _cmd_scf,
    "survey-csv": _cmd_survey_csv,
    "faults": _cmd_faults,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate ICSC Flagship 2 paper artifacts.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_COMMANDS) + [
            "campaign", "capacity", "chaos", "exec", "obs", "profile",
            "serve",
        ],
        help="which paper artifact to regenerate ('exec' runs the "
        "parallel evaluation engine demo, 'profile' times the "
        "instrumented kernels on short demo workloads, 'serve' runs "
        "the micro-batched evaluation service -- one-shot with "
        "--requests FILE, synthetic load otherwise; 'chaos' runs a "
        "seeded fault-injection campaign against a shard cluster; "
        "'capacity' plans shard counts and cost per million requests "
        "from measured throughput/latency; 'obs' inspects recorded "
        "traces: show/summary/export)",
    )
    parser.add_argument(
        "demo",
        nargs="?",
        default=None,
        choices=sorted(_PROFILE_DEMOS),
        help="profile: which kernel demo to run (default: all)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="exec: pool size (default: CPU count); serve: batch "
        "execution workers (default: serial)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=16,
        help="exec: number of campaign cells to sweep",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "pickle", "shm"),
        default="auto",
        help="exec: how task payloads reach the process pool -- "
        "'pickle' copies, 'shm' ships large ndarrays as zero-copy "
        "shared-memory descriptors, 'auto' (default) switches to shm "
        "above a 1 MB payload threshold",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="exec: directory for the persistent result cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="exec: disable the content-addressed result cache",
    )
    parser.add_argument(
        "--requests",
        default=None,
        help="serve: JSON file holding an array of evaluation requests "
        "(one-shot mode)",
    )
    parser.add_argument(
        "--workload",
        default="imc-crossbar",
        help="serve: workload name for the synthetic load generator",
    )
    parser.add_argument(
        "--num-requests",
        type=int,
        default=24,
        help="serve: synthetic request count",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="serve: offered load in requests/second (default: burst)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="serve: micro-batch size",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve/chaos: shard count (serve defaults to an unsharded "
        "service, chaos to 4 supervised shards)",
    )
    parser.add_argument(
        "--backend",
        choices=("inproc", "process"),
        default="inproc",
        help="serve: shard backend -- 'process' hosts each shard in "
        "its own worker process (implies a cluster, default 2 shards)",
    )
    parser.add_argument(
        "--capacity-report",
        action="store_true",
        help="serve: append a capacity/TCO plan derived from the "
        "measured throughput and p99",
    )
    parser.add_argument(
        "--target-p99-ms",
        type=float,
        default=None,
        help="serve/capacity: target p99 latency in ms (serve default: "
        "5x the measured p99; capacity default: 250)",
    )
    parser.add_argument(
        "--shard-rps",
        type=float,
        default=None,
        help="capacity: measured per-shard throughput (rps)",
    )
    parser.add_argument(
        "--shard-p99-ms",
        type=float,
        default=None,
        help="capacity: measured service-time p99 (ms)",
    )
    parser.add_argument(
        "--from-report",
        default=None,
        help="capacity: read the model from a BENCH_scale.json (or any "
        "JSON with a capacity block)",
    )
    parser.add_argument(
        "--offered-rps",
        default=None,
        help="capacity: comma-separated offered loads to plan for "
        "(default: 0.5x..8x one shard's throughput)",
    )
    parser.add_argument(
        "--shard-cost",
        type=float,
        default=0.50,
        help="capacity/serve: cost per shard-hour (default: 0.50)",
    )
    parser.add_argument(
        "--overhead-cost",
        type=float,
        default=0.20,
        help="capacity/serve: fixed cluster overhead per hour "
        "(default: 0.20)",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=1024,
        help="capacity: largest shard count to consider",
    )
    parser.add_argument(
        "--kills",
        type=int,
        default=1,
        help="chaos: shard kills in the seeded schedule",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=6,
        help="serve: distinct configurations in the synthetic pool",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="serve: load-generator seed",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="serve: write the service metrics snapshot JSON here",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="serve: record the run under repro.obs tracing and write "
        "trace.jsonl / ledger.jsonl / trace.chrome.json here",
    )
    args = parser.parse_args(argv)
    if args.demo is not None and args.artifact != "profile":
        parser.error("a demo name is only valid with 'profile'")
    if args.artifact == "exec":
        print(_cmd_exec(args))
    elif args.artifact == "profile":
        print(_cmd_profile(args))
    elif args.artifact == "serve":
        print(_cmd_serve(args))
    elif args.artifact == "chaos":
        print(_cmd_chaos(args))
    elif args.artifact == "capacity":
        print(_cmd_capacity(args))
    else:
        print(_COMMANDS[args.artifact]())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
