"""Declarative campaign DAGs: nodes, edges, gates and schedules.

A :class:`CampaignGraph` describes a whole experimental campaign as
data: :class:`EvalNode` vertices are registered-:class:`~repro.core.api.
Workload` evaluations (content-addressed by
:func:`~repro.core.api.request_digest`), :class:`TaskNode` vertices run
arbitrary pure callables (the escape hatch the legacy bespoke loops
migrate through), and :class:`ReduceNode` vertices fold upstream
results (Pareto fronts, argmin, aggregation).  Edges are declared by
name -- explicitly through ``deps`` or implicitly by embedding a
:class:`ResultRef` inside a node's config/payload, which the runner
replaces with the referenced upstream value at dispatch time.

The graph itself is inert and serializable (``to_json`` /
``from_json`` for Eval/Reduce graphs); :class:`repro.campaign.runner.
GraphRunner` executes it, batching each topological layer onto the
existing exec/serve spine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import ValidationError
from repro.resilience.policy import ResiliencePolicy

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: Named reductions available to JSON-declared :class:`ReduceNode`\ s.
REDUCE_OPS = ("collect", "pareto", "argmin", "mean")


@dataclass(frozen=True)
class ResultRef:
    """A data-flow edge: *this value comes from an upstream node*.

    Embed a ``ResultRef`` as a value inside an :class:`EvalNode` config
    (or :class:`TaskNode` payload) and the runner substitutes the named
    node's result before dispatch.  *field* is an optional dotted path
    into the upstream value (``"metrics.best_latency_s"`` digs through
    a :class:`~repro.core.api.RunResult`); without it the whole value
    flows through.  JSON spelling: ``{"$from": "node", "field": ...}``.
    """

    node: str
    field: Optional[str] = None

    def resolve(self, value: Any) -> Any:
        if self.field is None:
            return value
        for part in self.field.split("."):
            if isinstance(value, Mapping):
                try:
                    value = value[part]
                except KeyError:
                    raise ValidationError(
                        f"ResultRef({self.node!r}): no key {part!r} in "
                        f"upstream value"
                    ) from None
            else:
                try:
                    value = getattr(value, part)
                except AttributeError:
                    raise ValidationError(
                        f"ResultRef({self.node!r}): upstream value has "
                        f"no attribute {part!r}"
                    ) from None
        return value

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"$from": self.node}
        if self.field is not None:
            payload["field"] = self.field
        return payload


def _find_refs(value: Any) -> List[ResultRef]:
    """Every :class:`ResultRef` embedded anywhere inside *value*."""
    if isinstance(value, ResultRef):
        return [value]
    if isinstance(value, Mapping):
        return [r for v in value.values() for r in _find_refs(v)]
    if isinstance(value, (list, tuple)):
        return [r for v in value for r in _find_refs(v)]
    return []


def resolve_refs(value: Any, upstream: Mapping[str, Any]) -> Any:
    """*value* with every embedded :class:`ResultRef` substituted by
    the referenced upstream result (*upstream* maps node name ->
    value)."""
    if isinstance(value, ResultRef):
        return value.resolve(upstream[value.node])
    if isinstance(value, Mapping):
        return {k: resolve_refs(v, upstream) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(resolve_refs(v, upstream) for v in value)
    if isinstance(value, list):
        return [resolve_refs(v, upstream) for v in value]
    return value


def _encode_refs(value: Any) -> Any:
    """JSON form of *value* with refs spelled ``{"$from": ...}``."""
    if isinstance(value, ResultRef):
        return value.to_json()
    if isinstance(value, Mapping):
        return {k: _encode_refs(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_refs(v) for v in value]
    return value


def _decode_refs(value: Any) -> Any:
    if isinstance(value, Mapping):
        if "$from" in value:
            return ResultRef(
                node=str(value["$from"]), field=value.get("field")
            )
        return {k: _decode_refs(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_refs(v) for v in value]
    return value


@dataclass(frozen=True)
class Gate:
    """Per-node validation: what a result must look like to count.

    *expect_metrics* names metrics that must be present;
    *predicates* are ``(metric, op, value)`` triples over the metric
    values (ops: ``< <= > >= == !=``); *require_ok* additionally
    rejects error-status results.  *check* is an optional callable
    escape hatch returning a failure message (or ``None`` to pass) --
    callable gates cannot be serialized to JSON.

    A gate failure on a node with backtracking budget
    (:class:`~repro.resilience.ResiliencePolicy`) triggers a perturbed
    re-run; otherwise the node fails.
    """

    expect_metrics: Tuple[str, ...] = ()
    predicates: Tuple[Tuple[str, str, Any], ...] = ()
    require_ok: bool = True
    check: Optional[Callable[[Any], Optional[str]]] = None

    def __post_init__(self) -> None:
        for metric, op, _ in self.predicates:
            if op not in _OPS:
                raise ValidationError(
                    f"unknown gate op {op!r} for metric {metric!r} "
                    f"(choose from {sorted(_OPS)})"
                )

    def failures(self, value: Any) -> List[str]:
        """Every way *value* fails this gate (empty = pass)."""
        problems: List[str] = []
        metrics = _metrics_view(value)
        if self.require_ok and getattr(value, "status", "ok") != "ok":
            problems.append(
                f"status is {value.status!r}: {value.error}"
            )
        for name in self.expect_metrics:
            if metrics is None or name not in metrics:
                problems.append(f"missing expected metric {name!r}")
        for name, op, bound in self.predicates:
            if metrics is None or name not in metrics:
                problems.append(
                    f"predicate metric {name!r} is absent"
                )
                continue
            if not _OPS[op](metrics[name], bound):
                problems.append(
                    f"{name} = {metrics[name]!r} violates "
                    f"{name} {op} {bound!r}"
                )
        if self.check is not None:
            message = self.check(value)
            if message:
                problems.append(str(message))
        return problems

    def to_json(self) -> Dict[str, Any]:
        if self.check is not None:
            raise ValidationError(
                "gates with callable check= cannot be serialized"
            )
        return {
            "expect_metrics": list(self.expect_metrics),
            "predicates": [list(p) for p in self.predicates],
            "require_ok": self.require_ok,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "Gate":
        return cls(
            expect_metrics=tuple(payload.get("expect_metrics", ())),
            predicates=tuple(
                (str(m), str(op), v)
                for m, op, v in payload.get("predicates", ())
            ),
            require_ok=bool(payload.get("require_ok", True)),
        )


def _metrics_view(value: Any) -> Optional[Mapping[str, Any]]:
    """The metric mapping a gate evaluates against: ``.metrics`` of a
    RunResult-shaped object, or the value itself when it is a dict."""
    metrics = getattr(value, "metrics", None)
    if isinstance(metrics, Mapping):
        return metrics
    if isinstance(value, Mapping):
        return value
    return None


@dataclass(frozen=True)
class EvalNode:
    """One registered-workload evaluation vertex.

    Content-addressed: the runner keys caching, in-batch dedup and
    checkpointing on ``request_digest(workload, resolved_config, seed,
    impl)``, so identical requests anywhere in the fleet share one
    computation.  *config* may embed :class:`ResultRef` values; the
    referenced nodes become implicit dependencies.  With
    *capture_errors* (default) an evaluation failure becomes an
    error-status result instead of aborting the campaign.
    """

    name: str
    workload: str
    config: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    impl: Optional[str] = None
    deps: Tuple[str, ...] = ()
    gate: Optional[Gate] = None
    resilience: Optional[ResiliencePolicy] = None
    capture_errors: bool = True

    kind = "eval"

    def dependencies(self) -> List[str]:
        seen: Dict[str, None] = dict.fromkeys(self.deps)
        for ref in _find_refs(self.config):
            seen.setdefault(ref.node, None)
        return list(seen)


@dataclass(frozen=True)
class TaskNode:
    """An arbitrary pure-callable vertex (module-level *fn* required
    for process-pool dispatch; set *local* for closures, which then run
    in the coordinator).

    The legacy bespoke loops ride through here: *payload* (which may
    embed :class:`ResultRef` values) is passed to ``fn(payload)``.
    *key* names the checkpoint record (defaults to the node name);
    *to_checkpoint* / *from_checkpoint* adapt the value to/from its
    JSON checkpoint form when the raw value is not itself a JSON dict.
    """

    name: str
    fn: Callable[[Any], Any]
    payload: Any = None
    deps: Tuple[str, ...] = ()
    key: Optional[str] = None
    gate: Optional[Gate] = None
    resilience: Optional[ResiliencePolicy] = None
    local: bool = False
    to_checkpoint: Optional[Callable[[Any], Dict[str, Any]]] = None
    from_checkpoint: Optional[Callable[[Dict[str, Any]], Any]] = None
    capture_errors: bool = True

    kind = "task"

    def dependencies(self) -> List[str]:
        seen: Dict[str, None] = dict.fromkeys(self.deps)
        for ref in _find_refs(self.payload):
            seen.setdefault(ref.node, None)
        return list(seen)


@dataclass(frozen=True)
class ReduceNode:
    """A pure reduction over upstream node results.

    Either *fn* -- a callable receiving an ordered ``{name:
    NodeResult}`` mapping of the dependencies -- or a named *op* from
    :data:`REDUCE_OPS` with *params*:

    - ``collect``: list of ok dependency values, in dependency order;
    - ``pareto``: ``params={"metrics": [m1, m2]}`` -- the Pareto-
      minimal subset of ok RunResult dependencies over two metrics;
    - ``argmin``: ``params={"metric": m}`` -- the ok dependency value
      with the smallest metric;
    - ``mean``: ``params={"metric": m}`` -- the metric's mean over ok
      dependencies.

    Reductions run in the coordinator (they are cheap folds, not
    evaluations) and are recomputed on resume.  With
    *allow_failed_deps* the reduction still runs when some
    dependencies failed; otherwise it is skipped.
    """

    name: str
    deps: Tuple[str, ...] = ()
    fn: Optional[Callable[[Mapping[str, Any]], Any]] = None
    op: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    allow_failed_deps: bool = False
    gate: Optional[Gate] = None

    kind = "reduce"

    def __post_init__(self) -> None:
        if (self.fn is None) == (self.op is None):
            raise ValidationError(
                f"reduce node {self.name!r} needs exactly one of fn= "
                "or op="
            )
        if self.op is not None and self.op not in REDUCE_OPS:
            raise ValidationError(
                f"unknown reduce op {self.op!r} "
                f"(choose from {REDUCE_OPS})"
            )

    def dependencies(self) -> List[str]:
        return list(dict.fromkeys(self.deps))


GraphNode = Union[EvalNode, TaskNode, ReduceNode]


class CampaignGraph:
    """An ordered, validated collection of campaign nodes.

    Insertion order is part of the contract: it breaks ties inside a
    topological layer, which makes schedules -- and therefore traces,
    ledgers and float reductions -- deterministic.
    """

    def __init__(self, name: str = "campaign") -> None:
        if not name:
            raise ValidationError("campaign graphs need a name")
        self.name = name
        self._nodes: Dict[str, GraphNode] = {}

    # ------------------------------------------------------------ building

    def add(self, node: GraphNode) -> GraphNode:
        if not node.name:
            raise ValidationError("campaign nodes need a name")
        if node.name in self._nodes:
            raise ValidationError(
                f"duplicate campaign node {node.name!r}"
            )
        self._nodes[node.name] = node
        return node

    def evaluate(self, name: str, workload: str, **kwargs: Any) -> EvalNode:
        """Shorthand: add an :class:`EvalNode`."""
        node = EvalNode(name=name, workload=workload, **kwargs)
        self.add(node)
        return node

    def task(self, name: str, fn: Callable, **kwargs: Any) -> TaskNode:
        """Shorthand: add a :class:`TaskNode`."""
        node = TaskNode(name=name, fn=fn, **kwargs)
        self.add(node)
        return node

    def reduce(self, name: str, **kwargs: Any) -> ReduceNode:
        """Shorthand: add a :class:`ReduceNode`."""
        node = ReduceNode(name=name, **kwargs)
        self.add(node)
        return node

    # ----------------------------------------------------------- inspection

    @property
    def nodes(self) -> List[GraphNode]:
        return list(self._nodes.values())

    def node(self, name: str) -> GraphNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ValidationError(
                f"unknown campaign node {name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    # ----------------------------------------------------------- validation

    def validate(self) -> None:
        """Reject unknown dependencies and cycles (Kahn residue)."""
        for node in self._nodes.values():
            for dep in node.dependencies():
                if dep not in self._nodes:
                    raise ValidationError(
                        f"node {node.name!r} depends on unknown node "
                        f"{dep!r}"
                    )
        layers = self._layers()
        placed = sum(len(layer) for layer in layers)
        if placed != len(self._nodes):
            stuck = sorted(
                set(self._nodes)
                - {name for layer in layers for name in layer}
            )
            raise ValidationError(
                f"campaign graph {self.name!r} has a dependency cycle "
                f"through {stuck}"
            )

    def _layers(self) -> List[List[str]]:
        indegree = {
            name: len(node.dependencies())
            for name, node in self._nodes.items()
        }
        dependents: Dict[str, List[str]] = {n: [] for n in self._nodes}
        for name, node in self._nodes.items():
            for dep in node.dependencies():
                if dep in dependents:
                    dependents[dep].append(name)
        ready = [n for n in self._nodes if indegree[n] == 0]
        layers: List[List[str]] = []
        while ready:
            layers.append(ready)
            following: Dict[str, None] = {}
            for name in ready:
                for child in dependents[name]:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        following.setdefault(child, None)
            # Preserve insertion order within the new layer.
            ready = [n for n in self._nodes if n in following]
        return layers

    def schedule(self) -> List[List[str]]:
        """Topological layers of node names; nodes within a layer are
        independent and batch together, ordered by insertion."""
        self.validate()
        return self._layers()

    # -------------------------------------------------------- serialization

    def to_json(self) -> Dict[str, Any]:
        """JSON spec of an Eval/Reduce graph.

        :class:`TaskNode` vertices, callable reductions and callable
        gate checks carry arbitrary Python and cannot be serialized.
        """
        nodes: List[Dict[str, Any]] = []
        for node in self._nodes.values():
            if isinstance(node, TaskNode):
                raise ValidationError(
                    f"task node {node.name!r} cannot be serialized to "
                    "JSON (callable payloads); keep such graphs in .py "
                    "specs"
                )
            if isinstance(node, EvalNode):
                entry: Dict[str, Any] = {
                    "kind": "eval",
                    "name": node.name,
                    "workload": node.workload,
                    "config": _encode_refs(dict(node.config)),
                    "seed": node.seed,
                }
                if node.impl is not None:
                    entry["impl"] = node.impl
                if node.deps:
                    entry["deps"] = list(node.deps)
                if node.resilience is not None:
                    entry["resilience"] = node.resilience.to_json()
                if not node.capture_errors:
                    entry["capture_errors"] = False
            else:
                if node.fn is not None:
                    raise ValidationError(
                        f"reduce node {node.name!r} uses a callable "
                        "fn= and cannot be serialized to JSON"
                    )
                entry = {
                    "kind": "reduce",
                    "name": node.name,
                    "op": node.op,
                    "deps": list(node.deps),
                }
                if node.params:
                    entry["params"] = dict(node.params)
                if node.allow_failed_deps:
                    entry["allow_failed_deps"] = True
            if node.gate is not None:
                entry["gate"] = node.gate.to_json()
            nodes.append(entry)
        return {"name": self.name, "nodes": nodes}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CampaignGraph":
        graph = cls(name=str(payload.get("name", "campaign")))
        for entry in payload.get("nodes", ()):
            kind = entry.get("kind", "eval")
            gate = (
                Gate.from_json(entry["gate"]) if "gate" in entry else None
            )
            if kind == "eval":
                resilience = None
                if "resilience" in entry:
                    resilience = ResiliencePolicy.from_json(
                        entry["resilience"]
                    )
                graph.add(
                    EvalNode(
                        name=str(entry["name"]),
                        workload=str(entry["workload"]),
                        config=_decode_refs(dict(entry.get("config", {}))),
                        seed=int(entry.get("seed", 0)),
                        impl=entry.get("impl"),
                        deps=tuple(entry.get("deps", ())),
                        gate=gate,
                        resilience=resilience,
                        capture_errors=bool(
                            entry.get("capture_errors", True)
                        ),
                    )
                )
            elif kind == "reduce":
                graph.add(
                    ReduceNode(
                        name=str(entry["name"]),
                        op=str(entry["op"]),
                        params=dict(entry.get("params", {})),
                        deps=tuple(entry.get("deps", ())),
                        allow_failed_deps=bool(
                            entry.get("allow_failed_deps", False)
                        ),
                        gate=gate,
                    )
                )
            else:
                raise ValidationError(
                    f"unknown campaign node kind {kind!r}"
                )
        return graph


def run_named_reduce(
    op: str,
    params: Mapping[str, Any],
    values: Sequence[Any],
) -> Any:
    """Apply one of :data:`REDUCE_OPS` to ok upstream *values*."""
    import numpy as np

    if op == "collect":
        return list(values)
    if op == "mean":
        metric = str(params["metric"])
        if not values:
            return 0.0
        return float(
            np.mean([_metric_of(v, metric) for v in values])
        )
    if op == "argmin":
        metric = str(params["metric"])
        if not values:
            raise ValidationError("argmin over an empty dependency set")
        return min(values, key=lambda v: _metric_of(v, metric))
    if op == "pareto":
        metrics = [str(m) for m in params["metrics"]]
        if len(metrics) != 2:
            raise ValidationError(
                "pareto reduce needs exactly two metrics"
            )
        if not values:
            return []
        from repro.core.pareto import pareto_indices

        objs = np.array(
            [[_metric_of(v, m) for m in metrics] for v in values],
            dtype=float,
        )
        keep = set(pareto_indices(objs))
        return [v for i, v in enumerate(values) if i in keep]
    raise ValidationError(f"unknown reduce op {op!r}")


def _metric_of(value: Any, metric: str) -> Any:
    view = _metrics_view(value)
    if view is None or metric not in view:
        raise ValidationError(
            f"reduce metric {metric!r} absent from upstream value"
        )
    return view[metric]


__all__ = [
    "CampaignGraph",
    "EvalNode",
    "Gate",
    "GraphNode",
    "REDUCE_OPS",
    "ReduceNode",
    "ResultRef",
    "TaskNode",
    "resolve_refs",
    "run_named_reduce",
]
