"""Execute campaign graphs on the exec/serve spine.

:class:`GraphRunner` walks a :class:`~repro.campaign.graph.
CampaignGraph` layer by topological layer.  Every independent
:class:`~repro.campaign.graph.EvalNode` in a layer batches onto one
backend -- the suite-wide ``parallel=``/``cache=`` engine
(:class:`~repro.exec.ParallelEvaluator`: sharding, shm transport,
content-addressed caching and crash recovery apply for free) or a live
:class:`~repro.serve.EvaluationService` -- while reductions fold in the
coordinator.  Per-node validation gates run on every result;
a gate failure consumes the node's
:class:`~repro.resilience.ResiliencePolicy` backtracking budget
(perturbed-seed re-runs, implementation fallback) before the node is
declared failed.  A :class:`~repro.resilience.CheckpointStore` makes
whole campaigns resumable mid-graph, and execution order is
deterministic -- fixed layer order, insertion order within layers --
so traces, ledgers and float reductions are byte-identical across
serial, pooled and served runs.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.graph import (
    CampaignGraph,
    EvalNode,
    GraphNode,
    ReduceNode,
    TaskNode,
    resolve_refs,
    run_named_reduce,
)
from repro.core.api import (
    RunResult,
    build_run_result,
    ensure_default_workloads,
    get_workload,
    request_digest,
)
from repro.core.errors import ValidationError
from repro.exec.parallel import CacheLike, EvaluatorLike, make_evaluator
from repro.resilience import ResiliencePolicy

#: Deterministic per-process occurrence counter for campaign trace ids
#: (same role as the serve tier's per-digest occurrence counter).
_TRACE_OCCURRENCES: Dict[str, int] = {}


def _eval_node_task(task: Tuple) -> Dict[str, Any]:
    """Evaluate one :class:`EvalNode` request (module-level: process
    pools can ship it; returns ``RunResult.to_json()`` so result caches
    can store it).  Transient faults retry under the node's backoff
    policy; with *capture* any terminal failure becomes an error-status
    result instead of poisoning the batch."""
    from repro.core.errors import TransientFault
    from repro.resilience import resilient_run

    name, config, seed, impl, policy, capture = task
    ensure_default_workloads()
    start = time.perf_counter()
    try:
        workload = get_workload(name)
        if policy is not None and policy.max_attempts > 1:
            outcome = resilient_run(
                lambda: workload.evaluate(config, seed=seed, impl=impl),
                policy=policy,
                retry_on=(TransientFault,),
            )
            result: RunResult = outcome.value
            if outcome.attempts > 1:
                result = RunResult(
                    **{**result.to_json(), "attempts": outcome.attempts}
                )
        else:
            result = workload.evaluate(config, seed=seed, impl=impl)
        return result.to_json()
    except Exception as exc:
        if not capture:
            raise
        return build_run_result(
            name,
            {},
            config=config,
            seed=seed,
            impl=impl,
            wall_time_s=time.perf_counter() - start,
            status="error",
            error=str(exc),
            error_type=type(exc).__name__,
        ).to_json()


def _task_node_call(task: Tuple) -> Any:
    """Run one :class:`TaskNode` callable (module-level: picklable)."""
    fn, payload = task
    return fn(payload)


@dataclass
class NodeResult:
    """Outcome of one graph node."""

    name: str
    kind: str
    status: str = "ok"
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    backtracks: int = 0
    resumed: bool = False
    wall_time_s: float = 0.0
    gate_failures: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class CampaignRunReport:
    """One :meth:`GraphRunner.run`'s worth of node outcomes."""

    graph: str
    results: Dict[str, NodeResult] = field(default_factory=dict)
    layers: List[List[str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values())

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            "nodes": len(self.results), "ok": 0, "error": 0,
            "skipped": 0, "resumed": 0, "backtracks": 0,
        }
        for result in self.results.values():
            counts[result.status] = counts.get(result.status, 0) + 1
            counts["resumed"] += int(result.resumed)
            counts["backtracks"] += result.backtracks
        return counts

    def value(self, name: str) -> Any:
        """The named node's result value; raises on error/skip so
        callers never consume half-campaigns silently."""
        try:
            result = self.results[name]
        except KeyError:
            raise ValidationError(
                f"campaign {self.graph!r} has no node {name!r}"
            ) from None
        if not result.ok:
            raise ValidationError(
                f"campaign node {name!r} is {result.status}"
                + (f": {result.error}" if result.error else "")
            )
        return result.value

    def to_json(self) -> Dict[str, Any]:
        """Summary form (CLI ``status`` / ``--out``)."""
        return {
            "graph": self.graph,
            "ok": self.ok,
            "counts": self.counts(),
            "layers": self.layers,
            "nodes": {
                name: {
                    "kind": r.kind,
                    "status": r.status,
                    "resumed": r.resumed,
                    "attempts": r.attempts,
                    "backtracks": r.backtracks,
                    "error": r.error,
                    "gate_failures": list(r.gate_failures),
                }
                for name, r in self.results.items()
            },
        }


class GraphRunner:
    """Run campaign graphs over the suite's execution backends.

    *parallel*/*cache* follow the suite-wide contract (see
    :mod:`repro.core.api`); *service* routes :class:`EvalNode` batches
    through a live :class:`~repro.serve.EvaluationService` instead
    (admission control, micro-batching, dedup).  *checkpoint* persists
    completed node results and skips them on re-run; *resilience* is
    the default :class:`~repro.resilience.ResiliencePolicy` for nodes
    that do not declare their own.  *observe* controls the runner's own
    campaign spans/ledger events -- the legacy thin wrappers disable it
    to keep their observable output byte-identical to the bespoke
    loops they replaced.
    """

    def __init__(
        self,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
        service: Optional[Any] = None,
        checkpoint: Optional[Any] = None,
        resilience: Optional[ResiliencePolicy] = None,
        observe: bool = True,
    ) -> None:
        self.engine = make_evaluator(parallel, cache)
        self.service = service
        self.checkpoint = checkpoint
        self.resilience = resilience
        self.observe = observe

    # ---------------------------------------------------------------- run

    def run(self, graph: CampaignGraph) -> CampaignRunReport:
        from repro.obs.ledger import get_ledger
        from repro.obs.trace import derive_trace_id, get_tracer

        layers = graph.schedule()
        report = CampaignRunReport(graph=graph.name, layers=layers)
        ledger = get_ledger()
        tracer = get_tracer()
        node_order = {
            node.name: index for index, node in enumerate(graph.nodes)
        }

        root = None
        if self.observe and tracer.enabled:
            material = f"campaign|{graph.name}"
            occurrence = _TRACE_OCCURRENCES.get(material, 0)
            _TRACE_OCCURRENCES[material] = occurrence + 1
            root = tracer.start_span(
                "campaign",
                trace_id=derive_trace_id(material, occurrence),
                parent_id="",
                order=0,
                attributes={"graph": graph.name, "nodes": len(graph)},
            )
        if self.observe:
            ledger.event(
                "campaign.started",
                graph=graph.name,
                nodes=len(graph),
                layers=len(layers),
            )

        status = "ok"
        try:
            with ExitStack() as stack:
                if root is not None:
                    stack.enter_context(tracer.activate(root.context))
                for index, layer in enumerate(layers):
                    self._run_layer(graph, layer, index, report, node_order)
        except BaseException:
            status = "error"
            raise
        finally:
            if self.checkpoint is not None:
                self.checkpoint.flush()
            if root is not None:
                tracer.end_span(root, status=status)
            if self.observe:
                counts = report.counts()
                ledger.event(
                    "campaign.finished",
                    graph=graph.name,
                    status=status,
                    ok=counts["ok"],
                    errors=counts["error"],
                    skipped=counts["skipped"],
                    resumed=counts["resumed"],
                )
        return report

    # -------------------------------------------------------------- layers

    def _run_layer(
        self,
        graph: CampaignGraph,
        layer: List[str],
        layer_index: int,
        report: CampaignRunReport,
        node_order: Dict[str, int],
    ) -> None:
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        with ExitStack() as stack:
            if self.observe and tracer.enabled:
                span = tracer.start_span(
                    "campaign.layer",
                    order=layer_index,
                    attributes={"layer": layer_index, "nodes": len(layer)},
                )
                if span is not None:
                    stack.callback(tracer.end_span, span)
                    stack.enter_context(tracer.activate(span.context))
            self._dispatch_layer(graph, layer, report, node_order)

    def _dispatch_layer(
        self,
        graph: CampaignGraph,
        layer: List[str],
        report: CampaignRunReport,
        node_order: Dict[str, int],
    ) -> None:
        ready: List[GraphNode] = []
        for name in layer:
            node = graph.node(name)
            if self._skip_for_failed_deps(node, report):
                continue
            if self._restore_from_checkpoint(node, report):
                continue
            ready.append(node)

        # Batch the registered-workload evaluations of this layer onto
        # one backend call; everything else runs in the coordinator (or
        # engine-mapped for picklable task nodes).
        evals = [n for n in ready if isinstance(n, EvalNode)]
        dispatched = self._dispatch_evals(evals, report)
        mapped_tasks = self._dispatch_tasks(
            [
                n for n in ready
                if isinstance(n, TaskNode) and not n.local
            ],
            report,
        )
        for node in ready:
            if isinstance(node, EvalNode):
                self._finish_eval(node, dispatched[node.name], report)
            elif isinstance(node, TaskNode):
                self._finish_task(node, mapped_tasks, report)
            else:
                self._finish_reduce(node, report)

    # ---------------------------------------------------- skip / checkpoint

    def _skip_for_failed_deps(
        self, node: GraphNode, report: CampaignRunReport
    ) -> bool:
        failed = [
            dep
            for dep in node.dependencies()
            if not report.results[dep].ok
        ]
        if not failed:
            return False
        if isinstance(node, ReduceNode) and node.allow_failed_deps:
            return False
        result = NodeResult(
            name=node.name,
            kind=node.kind,
            status="skipped",
            error=f"upstream failed: {', '.join(failed)}",
        )
        self._record(node, result)
        report.results[node.name] = result
        return True

    def _node_key(
        self, node: GraphNode, report: CampaignRunReport
    ) -> Optional[str]:
        if isinstance(node, EvalNode):
            config = self._resolved_config(node, report)
            digest = request_digest(
                node.workload, config, node.seed, node.impl
            )
            return f"{node.name}|{digest}"
        if isinstance(node, TaskNode):
            return node.key or node.name
        return None  # reductions are cheap folds; recompute on resume

    def _restore_from_checkpoint(
        self, node: GraphNode, report: CampaignRunReport
    ) -> bool:
        if self.checkpoint is None:
            return False
        key = self._node_key(node, report)
        if key is None or key not in self.checkpoint:
            return False
        record = self.checkpoint.get(key)
        if isinstance(node, EvalNode):
            value: Any = RunResult.from_json(record)
        elif isinstance(node, TaskNode) and node.from_checkpoint is not None:
            value = node.from_checkpoint(record)
        elif set(record) == {"value"}:
            value = record["value"]
        else:
            value = record
        result = NodeResult(
            name=node.name, kind=node.kind, value=value, resumed=True
        )
        self._record(node, result)
        report.results[node.name] = result
        return True

    def _save_checkpoint(
        self, node: GraphNode, result: NodeResult, report: CampaignRunReport
    ) -> None:
        if self.checkpoint is None or not result.ok or result.resumed:
            return
        key = self._node_key(node, report)
        if key is None:
            return
        if isinstance(node, EvalNode):
            record = result.value.to_json()
        elif isinstance(node, TaskNode) and node.to_checkpoint is not None:
            record = node.to_checkpoint(result.value)
        elif isinstance(result.value, dict):
            record = result.value
        else:
            record = {"value": result.value}
        self.checkpoint.save(key, record)
        from repro.obs.ledger import get_ledger

        get_ledger().event("checkpoint.saved", cell=key)

    # ------------------------------------------------------------ eval path

    def _resolved_config(
        self, node: EvalNode, report: CampaignRunReport
    ) -> Dict[str, Any]:
        upstream = {
            dep: report.results[dep].value
            for dep in node.dependencies()
            if dep in report.results and report.results[dep].ok
        }
        return resolve_refs(dict(node.config), upstream)

    def _policy_for(self, node: GraphNode) -> Optional[ResiliencePolicy]:
        return getattr(node, "resilience", None) or self.resilience

    def _service_trace_ctx(self):
        """The campaign-layer trace context to stitch service-dispatched
        evaluations under, or ``None`` when tracing is off."""
        if not self.observe:
            return None
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        if not tracer.enabled:
            return None
        return tracer.current()

    def _dispatch_evals(
        self, nodes: List[EvalNode], report: CampaignRunReport
    ) -> Dict[str, RunResult]:
        """Evaluate a layer's EvalNodes as one batch; returns results
        keyed by node name."""
        if not nodes:
            return {}
        configs = {
            node.name: self._resolved_config(node, report)
            for node in nodes
        }
        if self.service is not None:
            # Under tracing the layer span is this thread's active
            # context; handing it to the service stitches every node's
            # request trace under the campaign trace -- across the
            # cluster router and process-shard boundary too.
            trace_ctx = self._service_trace_ctx()
            futures = [
                self.service.submit(
                    node.workload,
                    configs[node.name],
                    seed=node.seed,
                    impl=node.impl,
                    block=True,
                    trace_ctx=trace_ctx,
                )
                for node in nodes
            ]
            return {
                node.name: future.result()
                for node, future in zip(nodes, futures)
            }
        tasks = []
        keys = []
        for node in nodes:
            policy = self._policy_for(node)
            tasks.append(
                (
                    node.workload,
                    configs[node.name],
                    node.seed,
                    node.impl,
                    policy.backoff if policy is not None else None,
                    node.capture_errors,
                )
            )
            keys.append(
                request_digest(
                    node.workload, configs[node.name], node.seed, node.impl
                )
            )
        if self.engine is not None:
            records = self.engine.map(_eval_node_task, tasks, keys=keys)
        else:
            records = [_eval_node_task(task) for task in tasks]
        return {
            node.name: RunResult.from_json(record)
            for node, record in zip(nodes, records)
        }

    def _evaluate_single(
        self, node: EvalNode, config: Dict[str, Any], seed: int,
        impl: Optional[str],
    ) -> RunResult:
        """One backtrack re-run, on the same backend as the batch."""
        if self.service is not None:
            return self.service.submit(
                node.workload, config, seed=seed, impl=impl, block=True,
                trace_ctx=self._service_trace_ctx(),
            ).result()
        policy = self._policy_for(node)
        task = (
            node.workload,
            config,
            seed,
            impl,
            policy.backoff if policy is not None else None,
            node.capture_errors,
        )
        if self.engine is not None:
            key = request_digest(node.workload, config, seed, impl)
            (record,) = self.engine.map(_eval_node_task, [task], keys=[key])
        else:
            record = _eval_node_task(task)
        return RunResult.from_json(record)

    def _finish_eval(
        self,
        node: EvalNode,
        result: RunResult,
        report: CampaignRunReport,
    ) -> None:
        policy = self._policy_for(node)
        failures = self._gate_failures(node, result)
        backtracks = 0
        while failures and policy is not None \
                and backtracks < policy.max_backtracks:
            backtracks += 1
            seed = node.seed + backtracks * policy.seed_step
            impl = node.impl
            if (
                policy.fallback_impl is not None
                and backtracks == policy.max_backtracks
            ):
                impl = policy.fallback_impl
            self._note_backtrack(node, backtracks, seed, impl)
            config = self._resolved_config(node, report)
            result = self._evaluate_single(node, config, seed, impl)
            failures = self._gate_failures(node, result)

        if failures:
            outcome = NodeResult(
                name=node.name,
                kind=node.kind,
                status="error",
                value=result,
                error="; ".join(failures),
                error_type="GateFailure",
                attempts=result.attempts,
                backtracks=backtracks,
                wall_time_s=result.wall_time_s,
                gate_failures=tuple(failures),
            )
        elif result.status != "ok":
            outcome = NodeResult(
                name=node.name,
                kind=node.kind,
                status="error",
                value=result,
                error=result.error,
                error_type=result.error_type,
                attempts=result.attempts,
                backtracks=backtracks,
                wall_time_s=result.wall_time_s,
            )
        else:
            outcome = NodeResult(
                name=node.name,
                kind=node.kind,
                value=result,
                attempts=result.attempts,
                backtracks=backtracks,
                wall_time_s=result.wall_time_s,
            )
        self._record(node, outcome)
        report.results[node.name] = outcome
        self._save_checkpoint(node, outcome, report)

    # ------------------------------------------------------------ task path

    def _dispatch_tasks(
        self, nodes: List[TaskNode], report: CampaignRunReport
    ) -> Dict[str, Any]:
        """Engine-map the picklable task nodes of a layer; values (or
        captured exceptions) keyed by node name."""
        if not nodes or self.engine is None:
            return {}
        tasks = [
            (
                node.fn,
                resolve_refs(node.payload, self._upstream(node, report)),
            )
            for node in nodes
        ]
        values = self.engine.map(
            _task_node_call, tasks, keys=[n.key for n in nodes]
        )
        return dict(zip((n.name for n in nodes), values))

    def _upstream(
        self, node: GraphNode, report: CampaignRunReport
    ) -> Dict[str, Any]:
        return {
            dep: report.results[dep].value
            for dep in node.dependencies()
            if dep in report.results and report.results[dep].ok
        }

    def _finish_task(
        self,
        node: TaskNode,
        mapped: Dict[str, Any],
        report: CampaignRunReport,
    ) -> None:
        start = time.perf_counter()
        if node.name in mapped:
            value = mapped[node.name]
            outcome = NodeResult(name=node.name, kind=node.kind, value=value)
        else:
            payload = resolve_refs(
                node.payload, self._upstream(node, report)
            )
            try:
                value = node.fn(payload)
            except Exception as exc:
                if not node.capture_errors:
                    raise
                outcome = NodeResult(
                    name=node.name,
                    kind=node.kind,
                    status="error",
                    error=str(exc),
                    error_type=type(exc).__name__,
                    wall_time_s=time.perf_counter() - start,
                )
                self._record(node, outcome)
                report.results[node.name] = outcome
                return
            outcome = NodeResult(
                name=node.name,
                kind=node.kind,
                value=value,
                wall_time_s=time.perf_counter() - start,
            )
        failures = self._gate_failures(node, outcome.value)
        if failures:
            outcome.status = "error"
            outcome.error = "; ".join(failures)
            outcome.error_type = "GateFailure"
            outcome.gate_failures = tuple(failures)
        self._record(node, outcome)
        report.results[node.name] = outcome
        self._save_checkpoint(node, outcome, report)

    # ---------------------------------------------------------- reduce path

    def _finish_reduce(
        self, node: ReduceNode, report: CampaignRunReport
    ) -> None:
        deps = {
            dep: report.results[dep] for dep in node.dependencies()
        }
        start = time.perf_counter()
        try:
            if node.fn is not None:
                value = node.fn(deps)
            else:
                ok_values = [r.value for r in deps.values() if r.ok]
                value = run_named_reduce(node.op, node.params, ok_values)
        except Exception as exc:
            outcome = NodeResult(
                name=node.name,
                kind=node.kind,
                status="error",
                error=str(exc),
                error_type=type(exc).__name__,
                wall_time_s=time.perf_counter() - start,
            )
            self._record(node, outcome)
            report.results[node.name] = outcome
            return
        outcome = NodeResult(
            name=node.name,
            kind=node.kind,
            value=value,
            wall_time_s=time.perf_counter() - start,
        )
        failures = self._gate_failures(node, value)
        if failures:
            outcome.status = "error"
            outcome.error = "; ".join(failures)
            outcome.error_type = "GateFailure"
            outcome.gate_failures = tuple(failures)
        self._record(node, outcome)
        report.results[node.name] = outcome

    # ------------------------------------------------------------ obs hooks

    def _gate_failures(self, node: GraphNode, value: Any) -> List[str]:
        gate = getattr(node, "gate", None)
        if gate is None:
            return []
        failures = gate.failures(value)
        if failures and self.observe:
            from repro.obs.ledger import get_ledger

            get_ledger().event(
                "gate.failed", node=node.name, failures=len(failures)
            )
        return failures

    def _note_backtrack(
        self, node: GraphNode, attempt: int, seed: int, impl: Optional[str]
    ) -> None:
        if not self.observe:
            return
        from repro.obs.ledger import get_ledger

        get_ledger().event(
            "node.backtrack",
            node=node.name,
            attempt=attempt,
            seed=seed,
            impl=impl,
        )

    def _record(self, node: GraphNode, result: NodeResult) -> None:
        if not self.observe:
            return
        from repro.obs.ledger import get_ledger

        get_ledger().event(
            "node.done",
            node=node.name,
            kind=node.kind,
            status=result.status,
            resumed=result.resumed,
            backtracks=result.backtracks,
        )


__all__ = [
    "CampaignRunReport",
    "GraphRunner",
    "NodeResult",
]
