"""Campaign-graph builders for the suite's classic campaign shapes.

Each builder turns one of the legacy bespoke loops -- IMC crossbar
sweeps, the hetero device x storage matrix (plain and fault-injected),
DSE exploration runs and explorer comparisons -- into a declarative
:class:`~repro.campaign.CampaignGraph`, which the public entry points
(``crossbar_sweep``, ``run_campaign``, ``run_resilient_campaign``,
``DSERunner.run/compare``) now execute through
:class:`~repro.campaign.GraphRunner` behind unchanged signatures.
:func:`composite_campaign_graph` is the cross-subsystem example: a DSE
exploration feeding a hetero campaign feeding a Pareto reduction, fully
JSON-serializable for the ``repro campaign`` CLI.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.campaign.graph import (
    CampaignGraph,
    EvalNode,
    ReduceNode,
    ResultRef,
    TaskNode,
)
from repro.core.api import request_digest

# ------------------------------------------------------------ IMC sweeps


def crossbar_sweep_graph(
    specs: Sequence[Any], *, capture_errors: bool = False
) -> CampaignGraph:
    """The IMC crossbar grid as one EvalNode per spec plus a ``rows``
    reduction rebuilding the legacy record list (in spec order, legacy
    key order)."""
    specs = list(specs)
    graph = CampaignGraph(name="crossbar-sweep")
    names: List[str] = []
    for index, spec in enumerate(specs):
        name = f"cell-{index}"
        graph.add(
            EvalNode(
                name=name,
                workload="imc-crossbar",
                config={
                    "rows": spec.rows,
                    "cols": spec.cols,
                    "device": spec.device,
                    "wire_resistance_ohm": spec.wire_resistance_ohm,
                    "use_program_verify": spec.use_program_verify,
                    "num_inputs": spec.num_inputs,
                    "t_seconds": spec.t_seconds,
                },
                seed=spec.seed,
                capture_errors=capture_errors,
            )
        )
        names.append(name)

    def rows_fn(deps: Mapping[str, Any]) -> List[Dict[str, Any]]:
        rows = []
        for spec, name in zip(specs, names):
            result = deps[name].value
            record = {
                "rows": spec.rows,
                "cols": spec.cols,
                "device": spec.device,
                "wire_resistance_ohm": spec.wire_resistance_ohm,
                "use_program_verify": spec.use_program_verify,
                "seed": spec.seed,
            }
            record.update(result.metrics)
            rows.append(record)
        return rows

    graph.add(ReduceNode(name="rows", deps=tuple(names), fn=rows_fn))
    return graph


# -------------------------------------------------------- hetero campaigns


def _hetero_cell_nodes(
    workload: Any,
    devices: Tuple[Any, ...],
    storage_tiers: Tuple[Any, ...],
) -> List[Tuple[str, Any, Any, str]]:
    from repro.hetero.campaign import _scheduled_cells

    return [
        (f"{device.name}|{storage.name}|{phase}", device, storage, phase)
        for device, storage, phase in _scheduled_cells(
            devices, storage_tiers
        )
    ]


def hetero_campaign_graph(
    workload: Any,
    devices: Tuple[Any, ...],
    storage_tiers: Tuple[Any, ...],
) -> CampaignGraph:
    """The device x storage matrix as campaign nodes.

    Cells whose device and storage match the ``hetero-cell`` presets
    become :class:`EvalNode`\\ s (servable, cacheable by
    ``request_digest``); non-preset hardware falls back to
    :class:`TaskNode`\\ s around the legacy cell function, content-keyed
    through :func:`~repro.core.api.request_digest` all the same.  The
    ``cells`` reduction rebuilds the legacy ``List[CampaignCell]``.
    """
    import dataclasses

    from repro.hetero.campaign import CampaignCell, _campaign_cell_task
    from repro.hetero.workload import HeteroCellWorkload

    device_presets, storage_presets = HeteroCellWorkload._presets()
    device_keys = {v: k for k, v in device_presets.items()}
    storage_keys = {v: k for k, v in storage_presets.items()}
    workload_config = dataclasses.asdict(workload)

    graph = CampaignGraph(name="hetero-campaign")
    names: List[str] = []
    for name, device, storage, phase in _hetero_cell_nodes(
        workload, devices, storage_tiers
    ):
        if device in device_keys and storage in storage_keys:
            config = {
                "device": device_keys[device],
                "storage": storage_keys[storage],
                "phase": phase,
                **workload_config,
            }
            graph.add(
                EvalNode(
                    name=name,
                    workload="hetero-cell",
                    config=config,
                    seed=0,
                    capture_errors=False,
                )
            )
        else:
            graph.add(
                TaskNode(
                    name=name,
                    fn=_campaign_cell_task,
                    payload=(workload, device, storage, phase),
                    key=request_digest(
                        "hetero-cell",
                        {
                            "workload": workload,
                            "device": device,
                            "storage": storage,
                            "phase": phase,
                        },
                        None,
                        None,
                    ),
                    capture_errors=False,
                )
            )
        names.append(name)

    def cells_fn(deps: Mapping[str, Any]) -> List[CampaignCell]:
        cells = []
        for name in names:
            value = deps[name].value
            if isinstance(value, dict):
                cells.append(CampaignCell.from_record(value))
            else:
                cells.append(CampaignCell.from_run_result(value))
        return cells

    graph.add(ReduceNode(name="cells", deps=tuple(names), fn=cells_fn))
    return graph


def resilient_campaign_graph(
    workload: Any,
    devices: Tuple[Any, ...],
    storage_tiers: Tuple[Any, ...],
    injector: Any,
    backoff: Any,
) -> CampaignGraph:
    """The fault-injected matrix: one :class:`TaskNode` per scheduled
    cell around the legacy resilient cell contract (key-addressed fault
    streams, in-worker retry), checkpointed under the legacy
    ``device|storage|phase`` keys, plus a ``report`` reduction that
    rebuilds the legacy :class:`~repro.hetero.campaign.CampaignReport`
    -- resumed cells contribute zero backoff, exactly as before."""
    from repro.core.errors import CampaignCellError
    from repro.hetero.campaign import (
        CampaignCell,
        CampaignReport,
        _resilient_cell_task,
    )

    failed = injector.failed_devices([d.name for d in devices])
    survivors = [d for d in devices if d.name not in failed]
    fallback = survivors[0] if survivors else None

    graph = CampaignGraph(name="resilient-campaign")
    names: List[str] = []
    for name, device, storage, phase in _hetero_cell_nodes(
        workload, devices, storage_tiers
    ):
        actual = device
        executed_on = None
        if device.name in failed and fallback is not None:
            actual = fallback
            executed_on = fallback.name
        graph.add(
            TaskNode(
                name=name,
                fn=_resilient_cell_task,
                payload=(
                    workload, device, actual, executed_on, storage,
                    phase, injector, backoff, name,
                ),
                key=name,
                to_checkpoint=lambda value: value["record"],
                from_checkpoint=lambda record: {
                    "record": record, "backoff_s": 0.0,
                },
            )
        )
        names.append(name)

    def report_fn(deps: Mapping[str, Any]) -> CampaignReport:
        from repro.obs.ledger import get_ledger

        ledger = get_ledger()
        cells: List[CampaignCell] = []
        errors: List[CampaignCellError] = []
        total_backoff = 0.0
        for name in names:
            outcome = deps[name].value
            record = outcome["record"]
            total_backoff += outcome["backoff_s"]
            if "error" in record:
                errors.append(CampaignCellError.from_record(record))
                ledger.event(
                    "cell.error", cell=name,
                    attempts=int(record.get("attempts", 1)),
                )
            else:
                cells.append(CampaignCell.from_record(record))
        return CampaignReport(
            cells=cells, errors=errors, total_backoff_s=total_backoff
        )

    graph.add(ReduceNode(name="report", deps=tuple(names), fn=report_fn))
    return graph


# --------------------------------------------------------------- DSE runs


def dse_run_graph(
    runner: Any,
    explorer: Any,
    budget: int,
    seed: Any,
    parallel: Any,
    cache: Any,
) -> CampaignGraph:
    """One exploration as a single coordinator-local node (the
    explorer's objective evaluations still fan out through the
    ``parallel=``/``cache=`` engine inside the node)."""
    graph = CampaignGraph(name=f"dse-run-{explorer.name}")
    graph.add(
        TaskNode(
            name="explore",
            fn=lambda _payload: runner._explore(
                explorer, budget, seed, parallel, cache
            ),
            local=True,
            capture_errors=False,
        )
    )
    return graph


def dse_compare_graph(
    runner: Any,
    explorers: Sequence[Any],
    budget: int,
    seed: Any,
    backoff: Any,
    parallel: Any,
    cache: Any,
) -> CampaignGraph:
    """Explorer comparison: one node per explorer (failures captured,
    transients retried under *backoff*) and a ``scores`` reduction
    reproducing the shared-reference hypervolume scoring over the
    explorers that actually ran."""
    import numpy as np

    from repro.core.errors import TransientFault
    from repro.resilience import resilient_run

    graph = CampaignGraph(name="dse-compare")
    order: List[Tuple[str, str]] = []  # (explorer name, node name)
    for explorer in explorers:
        node_name = f"run-{explorer.name}"

        def run_one(_payload: Any, _explorer: Any = explorer) -> Tuple:
            start = time.perf_counter()
            outcome = resilient_run(
                lambda: runner.run(
                    _explorer, budget, seed=seed,
                    parallel=parallel, cache=cache,
                ),
                policy=backoff,
                retry_on=(TransientFault,),
            )
            return outcome.value, time.perf_counter() - start

        graph.add(
            TaskNode(
                name=node_name, fn=run_one, local=True,
                capture_errors=True,
            )
        )
        order.append((explorer.name, node_name))

    def scores_fn(deps: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
        results: Dict[str, Tuple[Any, float]] = {}
        failures: Dict[str, str] = {}
        for explorer_name, node_name in order:
            node_result = deps[node_name]
            if node_result.ok:
                results[explorer_name] = node_result.value
            else:
                failures[explorer_name] = node_result.error
        scores: Dict[str, Dict[str, float]] = {}
        if results:
            all_objs = np.vstack(
                [
                    np.array([p.objectives for p in res.evaluated])
                    for res, _ in results.values()
                ]
            )
            reference = all_objs.max(axis=0) * 1.1
            for explorer_name, (res, wall) in results.items():
                scores[explorer_name] = {
                    "hypervolume": res.hypervolume(reference),
                    "front_size": float(len(res.front)),
                    "evaluations": float(len(res.evaluated)),
                    "unique_evaluations": float(res.unique_evaluations),
                    "wall_time_s": wall,
                    "best_latency_s": res.best_latency.latency_s,
                    "best_area": res.best_area.area,
                }
        for explorer_name, message in failures.items():
            scores[explorer_name] = {"error": message}
        return scores

    graph.add(
        ReduceNode(
            name="scores",
            deps=tuple(node for _, node in order),
            fn=scores_fn,
            allow_failed_deps=True,
        )
    )
    return graph


# ------------------------------------------------------ composite example


def composite_campaign_graph(
    *,
    dse_budget: int = 16,
    seed: int = 0,
    devices: Sequence[str] = ("cpu", "gpu"),
    storage_tiers: Sequence[str] = ("sata", "nvme"),
    phase: str = "inference",
    epochs: int = 1,
) -> CampaignGraph:
    """The worked cross-subsystem example: DSE -> hetero -> Pareto.

    A DSE exploration sizes the downstream hetero campaign (each cell's
    ``num_volumes`` is a :class:`ResultRef` to the exploration's Pareto
    front size), and a ``pareto`` reduction folds the campaign cells
    into the time/energy frontier.  Every node is an Eval/Reduce node,
    so the whole graph serializes to JSON (``repro campaign example``)
    and rides :class:`~repro.serve.EvaluationService` end to end.
    """
    graph = CampaignGraph(name="dse-hetero-pareto")
    graph.add(
        EvalNode(
            name="dse",
            workload="dse",
            config={
                "explorer": "random",
                "budget": dse_budget,
                "kernel": "gemm",
                "size": 32,
            },
            seed=seed,
        )
    )
    cell_names: List[str] = []
    for device in devices:
        for storage in storage_tiers:
            name = f"hetero-{device}-{storage}"
            graph.add(
                EvalNode(
                    name=name,
                    workload="hetero-cell",
                    config={
                        "device": device,
                        "storage": storage,
                        "phase": phase,
                        "num_volumes": ResultRef(
                            "dse", "metrics.front_size"
                        ),
                        "epochs": epochs,
                    },
                    seed=seed,
                )
            )
            cell_names.append(name)
    graph.add(
        ReduceNode(
            name="pareto",
            op="pareto",
            params={"metrics": ["total_seconds", "energy_j"]},
            deps=tuple(cell_names),
        )
    )
    return graph


__all__ = [
    "composite_campaign_graph",
    "crossbar_sweep_graph",
    "dse_compare_graph",
    "dse_run_graph",
    "hetero_campaign_graph",
    "resilient_campaign_graph",
]
