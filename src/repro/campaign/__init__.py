"""Declarative campaign DAGs over the suite's execution spine.

One graph API for every campaign shape the suite runs: design-space
explorations, heterogeneous device x storage matrices, IMC crossbar
sweeps, and cross-subsystem composites of all three.  Describe the
campaign as a :class:`CampaignGraph` of :class:`EvalNode` /
:class:`TaskNode` / :class:`ReduceNode` vertices, then hand it to
:class:`GraphRunner`, which batches each topological layer onto the
``parallel=``/``cache=`` engine or a live
:class:`~repro.serve.EvaluationService`, runs per-node validation
:class:`Gate`\\ s with :class:`~repro.resilience.ResiliencePolicy`
backtracking, and checkpoints/resumes whole campaigns through
:class:`~repro.resilience.CheckpointStore`.

The legacy entry points (``DSERunner.run/compare``,
``repro.hetero.run_campaign`` / ``run_resilient_campaign``,
``repro.imc.crossbar_sweep``) are now thin wrappers over the builders
in :mod:`repro.campaign.builders`, with byte-identical outputs.
"""

from repro.campaign.builders import (
    composite_campaign_graph,
    crossbar_sweep_graph,
    dse_compare_graph,
    dse_run_graph,
    hetero_campaign_graph,
    resilient_campaign_graph,
)
from repro.campaign.graph import (
    REDUCE_OPS,
    CampaignGraph,
    EvalNode,
    Gate,
    GraphNode,
    ReduceNode,
    ResultRef,
    TaskNode,
    resolve_refs,
    run_named_reduce,
)
from repro.campaign.runner import (
    CampaignRunReport,
    GraphRunner,
    NodeResult,
)

__all__ = [
    "REDUCE_OPS",
    "CampaignGraph",
    "CampaignRunReport",
    "EvalNode",
    "Gate",
    "GraphNode",
    "GraphRunner",
    "NodeResult",
    "ReduceNode",
    "ResultRef",
    "TaskNode",
    "composite_campaign_graph",
    "crossbar_sweep_graph",
    "dse_compare_graph",
    "dse_run_graph",
    "hetero_campaign_graph",
    "resilient_campaign_graph",
    "resolve_refs",
    "run_named_reduce",
]
