"""Kernel library: loop nests lowered to dataflow IR.

HLS inputs are loops over an arithmetic body; :class:`LoopNest` captures
the structural information the directive engine needs (trip count, body
graph, memory footprint) and :func:`make_kernel` builds the nests for the
workloads Sec. III targets: dense linear algebra (GEMM, dot product,
FIR) for the AI path and an irregular gather kernel standing in for the
graph-processing workloads SPARTA accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.ir import DataflowGraph, Operation, OpKind


@dataclass(frozen=True)
class LoopNest:
    """One innermost loop: ``for i in range(trip_count): body``.

    *body* is the dataflow graph of a single iteration (iterations are
    independent unless ``has_reduction``, which serializes the final
    accumulate and bounds unrolled II from below).
    """

    name: str
    trip_count: int
    body: DataflowGraph
    has_reduction: bool = False
    irregular_memory: bool = False

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError("trip_count must be >= 1")

    @property
    def body_size(self) -> int:
        return len(self.body)

    @property
    def total_operations(self) -> int:
        return self.trip_count * self.body_size


def _dot_body(width: int = 32) -> DataflowGraph:
    graph = DataflowGraph("dot_body")
    graph.add(Operation("ld_a", OpKind.LOAD, bitwidth=width))
    graph.add(Operation("ld_b", OpKind.LOAD, bitwidth=width))
    graph.add(
        Operation("mac", OpKind.MAC, inputs=("ld_a", "ld_b"), bitwidth=width)
    )
    return graph


def _fir_body(taps: int, width: int = 32) -> DataflowGraph:
    graph = DataflowGraph("fir_body")
    partials = []
    for t in range(taps):
        graph.add(Operation(f"ld_x{t}", OpKind.LOAD, bitwidth=width))
        graph.add(
            Operation(
                f"mul{t}", OpKind.MUL, inputs=(f"ld_x{t}",), bitwidth=width
            )
        )
        partials.append(f"mul{t}")
    # Adder tree reduction.
    level = 0
    while len(partials) > 1:
        next_level = []
        for i in range(0, len(partials) - 1, 2):
            name = f"add{level}_{i // 2}"
            graph.add(
                Operation(
                    name,
                    OpKind.ADD,
                    inputs=(partials[i], partials[i + 1]),
                    bitwidth=width,
                )
            )
            next_level.append(name)
        if len(partials) % 2:
            next_level.append(partials[-1])
        partials = next_level
        level += 1
    graph.add(
        Operation("st_y", OpKind.STORE, inputs=(partials[0],), bitwidth=width)
    )
    return graph


def _gemm_body(unroll_k: int = 4, width: int = 32) -> DataflowGraph:
    graph = DataflowGraph("gemm_body")
    macs = []
    for k in range(unroll_k):
        graph.add(Operation(f"ld_a{k}", OpKind.LOAD, bitwidth=width))
        graph.add(Operation(f"ld_b{k}", OpKind.LOAD, bitwidth=width))
        graph.add(
            Operation(
                f"mac{k}",
                OpKind.MAC,
                inputs=(f"ld_a{k}", f"ld_b{k}"),
                bitwidth=width,
            )
        )
        macs.append(f"mac{k}")
    acc = macs[0]
    for i, mac in enumerate(macs[1:], start=1):
        name = f"acc{i}"
        graph.add(
            Operation(name, OpKind.ADD, inputs=(acc, mac), bitwidth=width)
        )
        acc = name
    graph.add(Operation("st_c", OpKind.STORE, inputs=(acc,), bitwidth=width))
    return graph


def _gather_body(width: int = 32) -> DataflowGraph:
    """Irregular gather-accumulate (graph-kernel inner loop): load an
    index, load through it, compare and conditionally accumulate."""
    graph = DataflowGraph("gather_body")
    graph.add(Operation("ld_idx", OpKind.LOAD, bitwidth=width))
    graph.add(
        Operation("ld_val", OpKind.LOAD, inputs=("ld_idx",), bitwidth=width)
    )
    graph.add(
        Operation("cmp", OpKind.CMP, inputs=("ld_val",), bitwidth=width)
    )
    graph.add(
        Operation(
            "add", OpKind.ADD, inputs=("ld_val", "cmp"), bitwidth=width
        )
    )
    graph.add(Operation("st", OpKind.STORE, inputs=("add",), bitwidth=width))
    return graph


def make_kernel(name: str, size: int = 256, width: int = 32) -> LoopNest:
    """Build a named kernel loop nest.

    Supported names: ``"dot"``, ``"fir8"``, ``"gemm"``, ``"gather"``.
    *size* is the innermost trip count.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if name == "dot":
        return LoopNest(
            name="dot", trip_count=size, body=_dot_body(width),
            has_reduction=True,
        )
    if name == "fir8":
        return LoopNest(name="fir8", trip_count=size, body=_fir_body(8, width))
    if name == "gemm":
        return LoopNest(
            name="gemm", trip_count=size, body=_gemm_body(4, width),
            has_reduction=True,
        )
    if name == "gather":
        return LoopNest(
            name="gather", trip_count=size, body=_gather_body(width),
            irregular_memory=True,
        )
    raise ValueError(f"unknown kernel {name!r}")
