"""Functional-unit binding and register allocation.

After scheduling, operations that never overlap in time can share one
functional unit.  :func:`bind_operations` performs the classic left-edge
interval binding per operation kind; the resulting :class:`Binding` gives
the FU counts the resource estimator prices, plus a register estimate
from the peak number of simultaneously live values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hls.ir import OpKind
from repro.hls.scheduling import Schedule


@dataclass
class Binding:
    """Operation -> functional-unit assignment."""

    unit_of: Dict[str, Tuple[OpKind, int]]
    units: Dict[OpKind, int]
    registers: int

    @property
    def total_units(self) -> int:
        return sum(self.units.values())


def bind_operations(schedule: Schedule) -> Binding:
    """Left-edge binding of scheduled operations onto shared units.

    Operations of one kind are sorted by start cycle and greedily packed
    onto the first unit free at their start time; occupancy lasts
    ``max(latency, 1)`` cycles (non-pipelined sharing, the conservative
    baseline).
    """
    graph = schedule.graph
    by_kind: Dict[OpKind, List[str]] = {}
    for op in graph.operations:
        by_kind.setdefault(op.kind, []).append(op.name)

    unit_of: Dict[str, Tuple[OpKind, int]] = {}
    units: Dict[OpKind, int] = {}
    for kind, names in by_kind.items():
        names.sort(key=lambda n: schedule.start_cycle[n])
        free_at: List[int] = []  # per unit, cycle it becomes free
        for name in names:
            start = schedule.start_cycle[name]
            duration = max(graph.op(name).latency, 1)
            for unit_idx, free in enumerate(free_at):
                if free <= start:
                    unit_of[name] = (kind, unit_idx)
                    free_at[unit_idx] = start + duration
                    break
            else:
                unit_of[name] = (kind, len(free_at))
                free_at.append(start + duration)
        units[kind] = len(free_at)

    return Binding(
        unit_of=unit_of,
        units=units,
        registers=estimate_registers(schedule),
    )


def estimate_registers(schedule: Schedule) -> int:
    """Peak number of simultaneously live values.

    A value is live from the cycle its producer finishes until the last
    consumer starts.  Source-less values (kernel inputs) are not counted;
    sink outputs live one cycle.
    """
    graph = schedule.graph
    events: Dict[int, int] = {}
    for op in graph.operations:
        birth = schedule.start_cycle[op.name] + op.latency
        consumer_starts = [
            schedule.start_cycle[c] for c in graph.consumers(op.name)
        ]
        death = max(consumer_starts, default=birth + 1)
        if death <= birth:
            death = birth + 1
        events[birth] = events.get(birth, 0) + 1
        events[death] = events.get(death, 0) - 1
    live = 0
    peak = 0
    for t in sorted(events):
        live += events[t]
        peak = max(peak, live)
    return peak
