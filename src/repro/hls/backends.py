"""HLS tool backends: the Bambu-vs-commercial comparison of Sec. III.

"Two HLS tools have been evaluated: the commercial tool Vitis HLS from
AMD/Xilinx and the open-source tool Bambu.  Both tools support a set of
optimization directives and standard accelerator interfaces; however,
Bambu has some additional features": compiler-IR input from AI
frameworks, multi-vendor FPGA and ASIC (OpenROAD) targets, and full
visibility/control of the optimization pipeline.

The two backend classes expose the same ``synthesize`` entry point with
different *capability envelopes*; the commercial profile rejects IR
inputs and non-vendor targets, and exposes no custom optimization hooks.
This turns the paper's qualitative comparison into testable behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hls.directives import Directives, SynthesisResult, synthesize
from repro.hls.estimation import ResourceLibrary
from repro.hls.kernels import LoopNest


class InputFormat(enum.Enum):
    """Accepted front-end input languages."""

    C_CPP = "C/C++"
    COMPILER_IR = "compiler IR"


class Target(enum.Enum):
    """Synthesis targets."""

    XILINX_FPGA = "AMD/Xilinx FPGA"
    INTEL_FPGA = "Intel FPGA"
    LATTICE_FPGA = "Lattice FPGA"
    ASIC_OPENROAD = "ASIC (OpenROAD)"


@dataclass
class HLSBackend:
    """Common backend machinery; subclasses define the envelope."""

    name: str = "generic"
    supported_inputs: tuple = (InputFormat.C_CPP,)
    supported_targets: tuple = (Target.XILINX_FPGA,)
    allows_custom_passes: bool = False
    library: ResourceLibrary = field(default_factory=ResourceLibrary)
    _custom_passes: List[Callable[[Directives], Directives]] = field(
        default_factory=list, repr=False
    )

    def supports(self, input_format: InputFormat, target: Target) -> bool:
        return (
            input_format in self.supported_inputs
            and target in self.supported_targets
        )

    def register_pass(
        self, transform: Callable[[Directives], Directives]
    ) -> None:
        """Install a custom optimization pass (directive rewriter).

        Only open tools expose this hook -- "having complete visibility of
        the HLS flow by using an open-source tool allows finer control of
        the optimization techniques."
        """
        if not self.allows_custom_passes:
            raise PermissionError(
                f"{self.name} does not expose optimization internals"
            )
        self._custom_passes.append(transform)

    def synthesize(
        self,
        nest: LoopNest,
        directives: Directives = Directives(),
        input_format: InputFormat = InputFormat.C_CPP,
        target: Target = Target.XILINX_FPGA,
    ) -> SynthesisResult:
        """Run the flow, enforcing the capability envelope."""
        if input_format not in self.supported_inputs:
            raise ValueError(
                f"{self.name} does not accept {input_format.value} input"
            )
        if target not in self.supported_targets:
            raise ValueError(
                f"{self.name} cannot target {target.value}"
            )
        for transform in self._custom_passes:
            directives = transform(directives)
        return synthesize(nest, directives, self.library)

    def feature_row(self) -> Dict[str, object]:
        """One row of the Sec. III tool-comparison matrix."""
        return {
            "tool": self.name,
            "c_cpp_input": InputFormat.C_CPP in self.supported_inputs,
            "ir_input": InputFormat.COMPILER_IR in self.supported_inputs,
            "multi_vendor": len(
                {t for t in self.supported_targets if "FPGA" in t.value}
            ) > 1,
            "asic_target": Target.ASIC_OPENROAD in self.supported_targets,
            "custom_passes": self.allows_custom_passes,
        }


def BambuBackend(library: Optional[ResourceLibrary] = None) -> HLSBackend:
    """The open-source Bambu profile [3]: IR input (SODA toolchain [4]),
    multi-vendor FPGAs, ASIC via OpenROAD, open optimization hooks."""
    return HLSBackend(
        name="Bambu",
        supported_inputs=(InputFormat.C_CPP, InputFormat.COMPILER_IR),
        supported_targets=(
            Target.XILINX_FPGA,
            Target.INTEL_FPGA,
            Target.LATTICE_FPGA,
            Target.ASIC_OPENROAD,
        ),
        allows_custom_passes=True,
        library=library or ResourceLibrary(),
    )


def CommercialBackend(library: Optional[ResourceLibrary] = None) -> HLSBackend:
    """The commercial profile: C/C++ only, single vendor, closed flow."""
    return HLSBackend(
        name="Commercial (Vitis-class)",
        supported_inputs=(InputFormat.C_CPP,),
        supported_targets=(Target.XILINX_FPGA,),
        allows_custom_passes=False,
        library=library or ResourceLibrary(),
    )
