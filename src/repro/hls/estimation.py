"""FPGA resource, timing and performance estimation.

Prices a bound design against a per-kind functional-unit cost library
(LUT/FF/DSP per unit, scaled by operand width) plus registers and
control overhead, and converts schedule cycles into wall-clock time at a
routing-pressure-derated clock.  These estimates are the objective
functions the DSE engine of :mod:`repro.dse` explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hls.allocation import Binding
from repro.hls.ir import OpKind
from repro.hls.scheduling import Schedule


@dataclass(frozen=True)
class UnitCost:
    """FPGA cost of one functional unit at 32-bit operands."""

    luts: int
    ffs: int
    dsps: int = 0


#: Default cost library (Kintex/Virtex-7-class figures).
DEFAULT_LIBRARY: Dict[OpKind, UnitCost] = {
    OpKind.ADD: UnitCost(luts=32, ffs=32),
    OpKind.MUL: UnitCost(luts=80, ffs=96, dsps=3),
    OpKind.MAC: UnitCost(luts=96, ffs=128, dsps=3),
    OpKind.DIV: UnitCost(luts=1100, ffs=1400),
    OpKind.CMP: UnitCost(luts=16, ffs=8),
    OpKind.SHIFT: UnitCost(luts=48, ffs=32),
    OpKind.LOGIC: UnitCost(luts=16, ffs=8),
    OpKind.LOAD: UnitCost(luts=40, ffs=48),
    OpKind.STORE: UnitCost(luts=32, ffs=40),
    OpKind.PHI: UnitCost(luts=8, ffs=16),
}


@dataclass(frozen=True)
class ResourceLibrary:
    """Cost library plus device timing parameters."""

    unit_costs: Dict[OpKind, UnitCost] = field(
        default_factory=lambda: dict(DEFAULT_LIBRARY)
    )
    base_clock_mhz: float = 300.0
    register_luts: int = 0
    register_ffs: int = 1
    control_luts_per_op: int = 4

    def cost_of(self, kind: OpKind, bitwidth: int) -> UnitCost:
        """Unit cost scaled to *bitwidth* (linear in width for
        LUTs/FFs, DSP count stepped at 18-bit granularity)."""
        if bitwidth < 1:
            raise ValueError("bitwidth must be >= 1")
        base = self.unit_costs[kind]
        scale = bitwidth / 32.0
        dsp = base.dsps
        if dsp and bitwidth > 18:
            dsp = base.dsps  # full precision already budgeted at 3
        elif dsp:
            dsp = max(1, base.dsps - 2)  # narrow operands fit one DSP
        return UnitCost(
            luts=max(1, int(round(base.luts * scale))),
            ffs=max(1, int(round(base.ffs * scale))),
            dsps=dsp,
        )


@dataclass(frozen=True)
class FPGAEstimate:
    """Synthesis-level estimate of one design point."""

    luts: int
    ffs: int
    dsps: int
    clock_mhz: float
    cycles: int

    @property
    def latency_s(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def area_score(self) -> float:
        """Scalar area proxy: LUTs + 64 * DSPs (a DSP's fabric
        equivalent), used when the DSE needs a single area objective."""
        return self.luts + 64.0 * self.dsps


def estimate_design(
    schedule: Schedule,
    binding: Binding,
    library: ResourceLibrary = ResourceLibrary(),
    average_bitwidth: int = 32,
) -> FPGAEstimate:
    """Price a scheduled, bound design.

    The clock is derated logarithmically with total unit count (routing
    pressure): ``f = base / (1 + 0.04 * log2(1 + units))``.
    """
    import math

    luts = ffs = dsps = 0
    for kind, count in binding.units.items():
        cost = library.cost_of(kind, average_bitwidth)
        luts += count * cost.luts
        ffs += count * cost.ffs
        dsps += count * cost.dsps
    luts += len(schedule.graph) * library.control_luts_per_op
    ffs += binding.registers * average_bitwidth * library.register_ffs
    luts += binding.registers * average_bitwidth * library.register_luts
    clock = library.base_clock_mhz / (
        1.0 + 0.04 * math.log2(1 + binding.total_units)
    )
    return FPGAEstimate(
        luts=luts,
        ffs=ffs,
        dsps=dsps,
        clock_mhz=clock,
        cycles=schedule.makespan,
    )
