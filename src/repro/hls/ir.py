"""Dataflow intermediate representation for the HLS flow.

A kernel body is a DAG of :class:`Operation` nodes; edges are data
dependences.  The IR deliberately mirrors what an HLS tool sees after
front-end lowering: typed arithmetic/memory operations with per-kind
latencies, no control flow (loops are represented structurally by
:class:`repro.hls.kernels.LoopNest` and lowered by the directive engine).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class OpKind(enum.Enum):
    """Operation classes with distinct hardware mappings."""

    ADD = "add"
    MUL = "mul"
    MAC = "mac"
    DIV = "div"
    CMP = "cmp"
    SHIFT = "shift"
    LOGIC = "logic"
    LOAD = "load"
    STORE = "store"
    PHI = "phi"


#: Default pipeline latencies in cycles per operation kind.
DEFAULT_LATENCY: Dict[OpKind, int] = {
    OpKind.ADD: 1,
    OpKind.MUL: 3,
    OpKind.MAC: 4,
    OpKind.DIV: 16,
    OpKind.CMP: 1,
    OpKind.SHIFT: 1,
    OpKind.LOGIC: 1,
    OpKind.LOAD: 2,
    OpKind.STORE: 1,
    OpKind.PHI: 0,
}


@dataclass(frozen=True)
class Operation:
    """One IR node."""

    name: str
    kind: OpKind
    inputs: Tuple[str, ...] = ()
    bitwidth: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be non-empty")
        if self.bitwidth < 1:
            raise ValueError("bitwidth must be >= 1")

    @property
    def latency(self) -> int:
        return DEFAULT_LATENCY[self.kind]


class DataflowGraph:
    """A DAG of operations keyed by name.

    Insertion order is preserved and must be topological (an operation's
    inputs must already exist), which makes construction errors loud and
    early.
    """

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._consumers: Dict[str, List[str]] = {}

    def add(self, op: Operation) -> Operation:
        """Insert *op*; inputs must reference existing operations."""
        if op.name in self._ops:
            raise ValueError(f"duplicate operation {op.name!r}")
        for dep in op.inputs:
            if dep not in self._ops:
                raise ValueError(
                    f"{op.name!r} depends on unknown operation {dep!r}"
                )
        self._ops[op.name] = op
        self._consumers[op.name] = []
        for dep in op.inputs:
            self._consumers[dep].append(op.name)
        return op

    def op(self, name: str) -> Operation:
        return self._ops[name]

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def operations(self) -> List[Operation]:
        """Operations in (topological) insertion order."""
        return list(self._ops.values())

    def consumers(self, name: str) -> List[str]:
        """Operations reading the output of *name*."""
        return list(self._consumers[name])

    def sources(self) -> List[Operation]:
        """Operations with no inputs."""
        return [op for op in self._ops.values() if not op.inputs]

    def sinks(self) -> List[Operation]:
        """Operations nothing consumes."""
        return [
            op for op in self._ops.values() if not self._consumers[op.name]
        ]

    def count_by_kind(self) -> Dict[OpKind, int]:
        counts: Dict[OpKind, int] = {}
        for op in self._ops.values():
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def critical_path_latency(self) -> int:
        """Longest dependence chain in cycles (the ASAP makespan)."""
        finish: Dict[str, int] = {}
        for op in self._ops.values():  # insertion order is topological
            start = max(
                (finish[dep] for dep in op.inputs), default=0
            )
            finish[op.name] = start + op.latency
        return max(finish.values(), default=0)

    def replicate(self, copies: int, prefix: str = "u") -> "DataflowGraph":
        """Structural replication (the unrolling primitive): *copies*
        independent instances of this graph in one DAG."""
        if copies < 1:
            raise ValueError("copies must be >= 1")
        out = DataflowGraph(name=f"{self.name}_x{copies}")
        for c in range(copies):
            rename = {
                op.name: f"{prefix}{c}_{op.name}" for op in self._ops.values()
            }
            for op in self._ops.values():
                out.add(
                    Operation(
                        name=rename[op.name],
                        kind=op.kind,
                        inputs=tuple(rename[d] for d in op.inputs),
                        bitwidth=op.bitwidth,
                    )
                )
        return out


def chain(graph: DataflowGraph, ops: Sequence[Operation]) -> None:
    """Convenience: add *ops* to *graph* in order."""
    for op in ops:
        graph.add(op)
