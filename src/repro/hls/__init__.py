"""High-Level Synthesis toolchain (paper Sec. III).

A Bambu-like HLS flow [3]: kernels enter as dataflow/control IR, get
scheduled (ASAP / ALAP / resource-constrained list scheduling), bound to
functional units, and estimated for FPGA resources, clock and latency.
Optimization directives (loop unrolling, pipelining, array partitioning,
inlining) reshape the IR before scheduling, exactly the knobs the DSE
layer of :mod:`repro.dse` explores.

Two estimation backends model the tool comparison of Sec. III:
:class:`~repro.hls.backends.BambuBackend` (accepts compiler IR from AI
frameworks, multi-vendor FPGA + ASIC targets, open optimization hooks)
and :class:`~repro.hls.backends.CommercialBackend` (C/C++ input only,
single vendor).

Modules: :mod:`repro.hls.ir`, :mod:`repro.hls.scheduling`,
:mod:`repro.hls.allocation`, :mod:`repro.hls.estimation`,
:mod:`repro.hls.directives`, :mod:`repro.hls.kernels`,
:mod:`repro.hls.backends`.
"""

from repro.hls.ir import DataflowGraph, OpKind, Operation
from repro.hls.scheduling import (
    Schedule,
    schedule_alap,
    schedule_asap,
    schedule_list,
)
from repro.hls.allocation import Binding, bind_operations
from repro.hls.estimation import (
    FPGAEstimate,
    ResourceLibrary,
    estimate_design,
)
from repro.hls.directives import Directives
from repro.hls.kernels import LoopNest, make_kernel
from repro.hls.backends import BambuBackend, CommercialBackend, InputFormat

__all__ = [
    "DataflowGraph",
    "OpKind",
    "Operation",
    "Schedule",
    "schedule_asap",
    "schedule_alap",
    "schedule_list",
    "Binding",
    "bind_operations",
    "FPGAEstimate",
    "ResourceLibrary",
    "estimate_design",
    "Directives",
    "LoopNest",
    "make_kernel",
    "BambuBackend",
    "CommercialBackend",
    "InputFormat",
]
