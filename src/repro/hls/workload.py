"""HLS adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation synthesizes one (kernel, directives) point
through the full scheduling/allocation/estimation flow."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.core.api import RunResult, build_run_result, register_workload
from repro.core.errors import ValidationError


class HLSWorkload:
    """``hls``: synthesize one directive configuration of one kernel."""

    name = "hls"

    def space(self) -> Dict[str, tuple]:
        return {
            "kernel": ("gemm", "dot", "fir8", "gather"),
            "size": (64, 128, 256),
            "unroll": (2, 1, 4, 8, 16),
            "pipeline": (True, False),
            "array_partition": (2, 1, 4, 8),
            "mul_units": (2, 1, 4, 8),
            "add_units": (2, 1, 4, 8),
        }

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.hls.directives import Directives, synthesize
        from repro.hls.estimation import ResourceLibrary
        from repro.hls.kernels import make_kernel

        if impl not in (None, "scalar", "numpy"):
            raise ValidationError(
                f"hls supports impl=None|'scalar'|'numpy', got {impl!r}"
            )
        cfg = dict(config)
        nest = make_kernel(
            str(cfg.get("kernel", "gemm")), size=int(cfg.get("size", 64))
        )
        directives = Directives(
            unroll=int(cfg.get("unroll", 1)),
            pipeline=bool(cfg.get("pipeline", False)),
            array_partition=int(cfg.get("array_partition", 1)),
            mul_units=int(cfg.get("mul_units", 1)),
            add_units=int(cfg.get("add_units", 1)),
        )
        start = time.perf_counter()
        result = synthesize(nest, directives, ResourceLibrary())
        wall = time.perf_counter() - start
        metrics = {
            "latency_s": result.latency_s,
            "area_score": result.estimate.area_score,
            "total_cycles": result.total_cycles,
            "iteration_cycles": result.iteration_cycles,
            "initiation_interval": result.initiation_interval,
            "luts": result.estimate.luts,
            "ffs": result.estimate.ffs,
            "dsps": result.estimate.dsps,
            "clock_mhz": result.estimate.clock_mhz,
        }
        return build_run_result(
            self.name, metrics, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall,
        )


register_workload(HLSWorkload())
