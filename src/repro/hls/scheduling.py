"""Operation scheduling (the core HLS phase).

Three schedulers over the :class:`~repro.hls.ir.DataflowGraph` IR:

- :func:`schedule_asap` -- unconstrained as-soon-as-possible;
- :func:`schedule_alap` -- as-late-as-possible against the ASAP makespan
  (the two together give slack/mobility);
- :func:`schedule_list` -- resource-constrained list scheduling with
  mobility-based priority, the production scheduler whose resource knob
  the DSE sweeps.

All schedulers return a :class:`Schedule` mapping operations to start
cycles, with validation helpers used by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hls.ir import DataflowGraph, OpKind
from repro.perf import profiled


@dataclass
class Schedule:
    """Start cycle per operation plus derived metrics."""

    graph: DataflowGraph
    start_cycle: Dict[str, int]

    @property
    def makespan(self) -> int:
        """Total latency in cycles."""
        return max(
            (
                self.start_cycle[op.name] + op.latency
                for op in self.graph.operations
            ),
            default=0,
        )

    def resource_usage(self) -> Dict[OpKind, int]:
        """Peak number of simultaneously busy units per kind."""
        peak: Dict[OpKind, int] = {}
        events: Dict[OpKind, Dict[int, int]] = {}
        for op in self.graph.operations:
            duration = max(op.latency, 1)
            timeline = events.setdefault(op.kind, {})
            start = self.start_cycle[op.name]
            timeline[start] = timeline.get(start, 0) + 1
            timeline[start + duration] = timeline.get(start + duration, 0) - 1
        for kind, timeline in events.items():
            level = 0
            best = 0
            for t in sorted(timeline):
                level += timeline[t]
                best = max(best, level)
            peak[kind] = best
        return peak

    def validate(self) -> None:
        """Raise when any data dependence is violated."""
        for op in self.graph.operations:
            for dep_name in op.inputs:
                dep = self.graph.op(dep_name)
                ready = self.start_cycle[dep_name] + dep.latency
                if self.start_cycle[op.name] < ready:
                    raise ValueError(
                        f"{op.name} starts at {self.start_cycle[op.name]} "
                        f"before input {dep_name} finishes at {ready}"
                    )


def schedule_asap(graph: DataflowGraph) -> Schedule:
    """Unconstrained ASAP schedule."""
    start: Dict[str, int] = {}
    for op in graph.operations:
        start[op.name] = max(
            (start[dep] + graph.op(dep).latency for dep in op.inputs),
            default=0,
        )
    return Schedule(graph=graph, start_cycle=start)


def schedule_alap(
    graph: DataflowGraph, deadline: Optional[int] = None
) -> Schedule:
    """ALAP schedule against *deadline* (default: the ASAP makespan)."""
    if deadline is None:
        deadline = schedule_asap(graph).makespan
    finish: Dict[str, int] = {}
    for op in reversed(graph.operations):
        consumer_starts = [
            finish[c] - graph.op(c).latency for c in graph.consumers(op.name)
        ]
        finish[op.name] = min(consumer_starts, default=deadline)
    start = {
        op.name: finish[op.name] - op.latency for op in graph.operations
    }
    if any(s < 0 for s in start.values()):
        raise ValueError(f"deadline {deadline} is infeasible")
    return Schedule(graph=graph, start_cycle=start)


def mobility(graph: DataflowGraph) -> Dict[str, int]:
    """Slack (ALAP - ASAP start) per operation; 0 = on the critical
    path."""
    asap = schedule_asap(graph)
    alap = schedule_alap(graph)
    return {
        name: alap.start_cycle[name] - asap.start_cycle[name]
        for name in asap.start_cycle
    }


@profiled("hls.schedule_list")
def schedule_list(
    graph: DataflowGraph,
    resources: Dict[OpKind, int],
    impl: str = "numpy",
) -> Schedule:
    """Resource-constrained list scheduling.

    *resources* caps the number of concurrently executing units per
    operation kind (kinds absent from the map are unconstrained).
    Priority is lowest mobility first (critical path first), the
    standard heuristic.

    ``impl="scalar"`` walks every cycle and re-sorts the ready list (the
    reference); ``impl="numpy"`` (default) keeps priority/wake state in
    arrays pre-sorted by ``(slack, name)`` and jumps empty cycles to the
    next unit retirement or operand arrival.  Both produce the identical
    ``start_cycle`` map; the equivalence tests pin that.
    """
    for kind, count in resources.items():
        if count < 1:
            raise ValueError(f"resource count for {kind} must be >= 1")
    if impl == "numpy":
        return _list_numpy(graph, resources)
    if impl != "scalar":
        raise ValueError(f"impl must be 'scalar' or 'numpy', got {impl!r}")
    return _list_scalar(graph, resources)


def _list_scalar(
    graph: DataflowGraph, resources: Dict[OpKind, int]
) -> Schedule:
    """Reference cycle-by-cycle list scheduler."""
    slack = mobility(graph)
    remaining_inputs = {
        op.name: len(op.inputs) for op in graph.operations
    }
    ready = [op.name for op in graph.operations if not op.inputs]
    start: Dict[str, int] = {}
    # busy[kind] holds finish cycles of in-flight units of that kind.
    busy: Dict[OpKind, list] = {}
    earliest: Dict[str, int] = {name: 0 for name in ready}
    cycle = 0
    scheduled = 0
    total = len(graph)
    while scheduled < total:
        # Retire finished units.
        for kind in busy:
            busy[kind] = [t for t in busy[kind] if t > cycle]
        # Candidates ready at this cycle, most critical first.
        candidates = sorted(
            (name for name in ready if earliest.get(name, 0) <= cycle),
            key=lambda n: (slack[n], n),
        )
        for name in candidates:
            op = graph.op(name)
            limit = resources.get(op.kind)
            in_flight = busy.setdefault(op.kind, [])
            if limit is not None and len(in_flight) >= limit:
                continue
            start[name] = cycle
            in_flight.append(cycle + max(op.latency, 1))
            ready.remove(name)
            scheduled += 1
            for consumer in graph.consumers(name):
                remaining_inputs[consumer] -= 1
                finish = cycle + op.latency
                earliest[consumer] = max(
                    earliest.get(consumer, 0), finish
                )
                if remaining_inputs[consumer] == 0:
                    ready.append(consumer)
        cycle += 1
    schedule = Schedule(graph=graph, start_cycle=start)
    schedule.validate()
    return schedule


def _list_numpy(
    graph: DataflowGraph, resources: Dict[OpKind, int]
) -> Schedule:
    """Priority-array list scheduler; identical schedule to
    :func:`_list_scalar`.

    Operations are renumbered once into ``(slack, name)`` priority order,
    so each cycle's candidate set -- ready ops whose operands have
    arrived -- is one boolean reduction and already sorted.  Cycles where
    nothing was scheduled are skipped to the next event (earliest busy-
    unit retirement or operand arrival); on such cycles the scalar loop
    provably schedules nothing, so the skip cannot change the result.
    A cycle that *did* schedule is followed cycle-by-cycle: a latency-0
    producer (PHI) can make its consumer a candidate at ``cycle + 1``.
    """
    slack = mobility(graph)
    order = sorted(slack, key=lambda n: (slack[n], n))
    index = {name: i for i, name in enumerate(order)}
    total = len(order)
    latency = [graph.op(name).latency for name in order]
    kind_of = [graph.op(name).kind for name in order]
    consumers = [
        [index[c] for c in graph.consumers(name)] for name in order
    ]
    remaining = np.array(
        [len(graph.op(name).inputs) for name in order], dtype=np.int64
    )
    ready = remaining == 0
    earliest = np.zeros(total, dtype=np.int64)
    start: Dict[str, int] = {}
    busy: Dict[OpKind, list] = {}
    cycle = 0
    scheduled = 0
    while scheduled < total:
        for kind in busy:
            busy[kind] = [t for t in busy[kind] if t > cycle]
        progressed = False
        # Ascending index order == ascending (slack, name): the exact
        # candidate order the scalar path sorts out each cycle.
        for i in np.flatnonzero(ready & (earliest <= cycle)):
            i = int(i)
            limit = resources.get(kind_of[i])
            in_flight = busy.setdefault(kind_of[i], [])
            if limit is not None and len(in_flight) >= limit:
                continue
            start[order[i]] = cycle
            in_flight.append(cycle + max(latency[i], 1))
            ready[i] = False
            scheduled += 1
            progressed = True
            finish = cycle + latency[i]
            for c in consumers[i]:
                remaining[c] -= 1
                if finish > earliest[c]:
                    earliest[c] = finish
                if remaining[c] == 0:
                    ready[c] = True
        if progressed or scheduled >= total:
            cycle += 1
            continue
        # Nothing schedulable: jump to the next retirement or arrival.
        events = [t for lst in busy.values() for t in lst]
        waits = earliest[ready]
        waits = waits[waits > cycle]
        if waits.size:
            events.append(int(waits.min()))
        cycle = min(events) if events else cycle + 1
    schedule = Schedule(graph=graph, start_cycle=start)
    schedule.validate()
    return schedule


def minimum_initiation_interval(
    graph: DataflowGraph, resources: Dict[OpKind, int]
) -> int:
    """Resource-limited lower bound on the pipeline initiation interval:
    ``max_kind ceil(ops_of_kind / units_of_kind)`` (recurrence-free IR,
    so ResMII is the binding constraint)."""
    counts = graph.count_by_kind()
    ii = 1
    for kind, count in counts.items():
        limit = resources.get(kind)
        if limit is not None:
            ii = max(ii, -(-count // limit))
    return ii
