"""Optimization directives and kernel synthesis (the HLS "pragmas").

Bambu and commercial tools "support a set of optimization directives";
here the directives reshape a :class:`~repro.hls.kernels.LoopNest` before
scheduling:

- **unroll(f)** replicates the loop body f times and divides the trip
  count (independent bodies schedule in parallel subject to resources);
- **pipeline** overlaps iterations at the resource-limited initiation
  interval instead of running them back-to-back;
- **array_partition(p)** multiplies the available memory ports (LOAD /
  STORE resource slots).

:func:`synthesize` runs the full flow -- directives -> schedule ->
binding -> estimate -- and returns both the performance and cost of the
design point.  It is the function the DSE engine calls thousands of
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hls.allocation import bind_operations
from repro.hls.estimation import (
    FPGAEstimate,
    ResourceLibrary,
    estimate_design,
)
from repro.hls.ir import OpKind
from repro.hls.kernels import LoopNest
from repro.hls.scheduling import (
    minimum_initiation_interval,
    schedule_list,
)


@dataclass(frozen=True)
class Directives:
    """One HLS configuration (a DSE design point)."""

    unroll: int = 1
    pipeline: bool = False
    array_partition: int = 1
    mul_units: int = 4
    add_units: int = 4

    def __post_init__(self) -> None:
        if self.unroll < 1 or self.array_partition < 1:
            raise ValueError("unroll and array_partition must be >= 1")
        if self.mul_units < 1 or self.add_units < 1:
            raise ValueError("unit budgets must be >= 1")


@dataclass(frozen=True)
class SynthesisResult:
    """Performance + cost of one synthesized design point."""

    kernel: str
    directives: Directives
    estimate: FPGAEstimate
    iteration_cycles: int
    initiation_interval: int
    total_cycles: int

    @property
    def latency_s(self) -> float:
        return self.total_cycles / (self.estimate.clock_mhz * 1e6)

    @property
    def throughput_ops_s(self) -> float:
        """Loop iterations retired per second."""
        return 1.0 / self.latency_s if self.total_cycles else 0.0


def resource_map(nest: LoopNest, directives: Directives) -> Dict[OpKind, int]:
    """Functional-unit budget implied by *directives*.

    Memory ports scale with array partitioning; irregular kernels cannot
    profit from partitioning (their accesses conflict unpredictably), so
    the port count stays at 1 bank's worth -- the limitation SPARTA's
    latency-hiding architecture addresses.
    """
    ports = directives.array_partition
    if nest.irregular_memory:
        ports = 1
    return {
        OpKind.MUL: directives.mul_units,
        OpKind.MAC: directives.mul_units,
        OpKind.ADD: directives.add_units,
        OpKind.DIV: 1,
        OpKind.LOAD: 2 * ports,
        OpKind.STORE: ports,
    }


def synthesize(
    nest: LoopNest,
    directives: Directives = Directives(),
    library: ResourceLibrary = ResourceLibrary(),
    average_bitwidth: int = 32,
) -> SynthesisResult:
    """Run the full HLS flow on *nest* under *directives*."""
    unroll = min(directives.unroll, nest.trip_count)
    body = nest.body.replicate(unroll) if unroll > 1 else nest.body
    resources = resource_map(nest, directives)
    schedule = schedule_list(body, resources)
    binding = bind_operations(schedule)
    estimate = estimate_design(
        schedule, binding, library, average_bitwidth=average_bitwidth
    )
    iterations = -(-nest.trip_count // unroll)
    iteration_cycles = schedule.makespan
    if directives.pipeline:
        ii = minimum_initiation_interval(body, resources)
        if nest.has_reduction:
            # The loop-carried accumulate bounds II from below.
            ii = max(ii, 1 + 0)
        total = iteration_cycles + (iterations - 1) * ii
    else:
        ii = iteration_cycles
        total = iterations * iteration_cycles
    return SynthesisResult(
        kernel=nest.name,
        directives=directives,
        estimate=estimate,
        iteration_cycles=iteration_cycles,
        initiation_interval=ii,
        total_cycles=total,
    )
