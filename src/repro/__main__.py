"""``python -m repro`` dispatches to the CLI."""

import os
import sys

from repro.cli import main

try:
    code = main()
    # Flush now, while EPIPE can still be caught below -- otherwise
    # interpreter-exit flushing turns a closed pipe into a traceback.
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream consumer (head, less, ...) closed the pipe: the Unix
    # convention is to die quietly with the SIGPIPE status.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 141
sys.exit(code)
