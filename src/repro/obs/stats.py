"""Shared descriptive statistics for every observability surface.

One percentile implementation, used everywhere a latency or duration
distribution is summarized -- :class:`repro.serve.ServiceMetrics`
snapshots, the load-generator's per-point latency summaries, the
serving and observability benches.  Before :mod:`repro.obs` existed the
same linear-interpolation math was hand-rolled per call site, which is
exactly how two reports of "p99" quietly disagree; now the snapshots
are byte-identical by construction (pinned by a regression test).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.errors import ValidationError


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated *q*-th percentile (q in [0, 100]) of
    *values*; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValidationError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summary(values: Sequence[float]) -> Dict[str, float]:
    """The standard distribution summary every report shares:
    count/mean/max plus p50/p95/p99."""
    values = list(values)
    if not values:
        return {
            "count": 0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
    }


def bucket_percentile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """*q*-th percentile estimated from fixed-bucket histogram counts.

    *bounds* are the upper edges of the first ``len(bounds)`` buckets;
    the final bucket (``counts[-1]``) is unbounded and is attributed its
    lower edge.  Within a bounded bucket the estimate interpolates
    linearly between the bucket's edges by rank -- the classic
    mergeable-histogram percentile used by the
    :class:`repro.obs.metrics.Histogram` snapshots.
    """
    if len(counts) != len(bounds) + 1:
        raise ValidationError("counts must have one entry per bucket")
    if not 0.0 <= q <= 100.0:
        raise ValidationError("percentile must be in [0, 100]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q / 100.0 * total
    seen = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            if i >= len(bounds):  # overflow bucket: no upper edge
                return float(bounds[-1]) if bounds else 0.0
            hi = bounds[i]
            frac = (rank - seen) / count if count else 0.0
            return float(lo + (hi - lo) * min(max(frac, 0.0), 1.0))
        seen += count
    lo = bounds[-1] if bounds else 0.0
    return float(lo)


def bucket_fraction_above(
    bounds: Sequence[float], counts: Sequence[int], threshold: float
) -> float:
    """Estimated fraction of observations above *threshold* in a
    fixed-bucket histogram count vector.

    The bucket containing the threshold contributes linearly by
    position (same interpolation model as :func:`bucket_percentile`);
    the unbounded overflow bucket counts entirely as above any
    threshold below its lower edge.  This is what the SLO layer uses
    to turn a latency histogram *delta* into "what fraction of this
    window's requests blew the latency target".
    """
    if len(counts) != len(bounds) + 1:
        raise ValidationError("counts must have one entry per bucket")
    total = sum(counts)
    if total == 0:
        return 0.0
    above = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        lo = bounds[i - 1] if i > 0 else 0.0
        if i >= len(bounds):
            # Overflow bucket: above any threshold below its lower edge.
            if threshold < lo:
                above += count
            continue
        hi = bounds[i]
        if threshold <= lo:
            above += count
        elif threshold < hi:
            above += count * (hi - threshold) / (hi - lo)
    return float(above / total)


__all__: List[str] = [
    "bucket_fraction_above",
    "bucket_percentile",
    "percentile",
    "summary",
]
