"""Unified Counter/Gauge/Histogram registry for the whole suite.

Before this module, the suite kept three disconnected, differently
shaped metric stores: :class:`repro.serve.ServiceMetrics` (raw latency
samples + hand-rolled percentiles), :class:`repro.perf.Profiler`
(timer/counter tree) and :class:`repro.exec.ResultCache` (hit/miss
dict).  ``MetricsRegistry`` gives them one spine:

- **Counter** -- monotonically increasing count (requests served,
  cache hits, retries);
- **Gauge** -- last-written value (queue depth, worker count);
- **Histogram** -- fixed-bucket duration/size distribution whose
  bucket counts are *mergeable*: a worker process can snapshot its
  histogram, ship the counts in the result envelope, and the parent
  merges them by vector addition -- the property raw-sample percentile
  stores lack.  Percentiles come from
  :func:`repro.obs.stats.bucket_percentile`.

The registry follows the :mod:`repro.perf` enablement policy: disabled
by default, and every record path checks a single boolean before doing
any work.  ``snapshot()``/``to_json()`` give one export surface;
``merge_snapshot()`` folds a worker snapshot in; ``absorb_profiler``
and ``absorb_cache`` pull the legacy stores into the same namespace.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ValidationError
from repro.obs.stats import bucket_percentile

#: Default histogram bucket upper edges (seconds): ~1µs .. ~67s in
#: powers of four, plus the unbounded overflow bucket.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    1e-6 * (4.0 ** i) for i in range(14)
)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-value-wins gauge."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram, mergeable across processes.

    ``bounds`` are the upper edges of the bounded buckets; observations
    above the last edge land in the overflow bucket.  Percentiles are
    estimated from the bucket counts, so two histograms with the same
    bounds merge exactly (count vectors add) and the merged percentile
    is the percentile of the merged population.
    """

    __slots__ = (
        "name", "bounds", "counts", "total", "sum", "min", "max", "_lock",
    )

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValidationError("histogram bounds must be increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        with self._lock:
            counts = list(self.counts)
        return bucket_percentile(self.bounds, counts, q)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this one."""
        if tuple(snapshot["bounds"]) != self.bounds:
            raise ValidationError(
                f"histogram {self.name!r}: bucket bounds differ, "
                "cannot merge"
            )
        counts = snapshot["counts"]
        with self._lock:
            for i, count in enumerate(counts):
                self.counts[i] += int(count)
            self.total += int(snapshot["count"])
            self.sum += float(snapshot["sum"])
            other_min = snapshot.get("min")
            other_max = snapshot.get("max")
            if other_min is not None and (
                self.min is None or other_min < self.min
            ):
                self.min = float(other_min)
            if other_max is not None and (
                self.max is None or other_max > self.max
            ):
                self.max = float(other_max)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self.counts)
            total = self.total
            acc = self.sum
            lo, hi = self.min, self.max
        return {
            "bounds": list(self.bounds),
            "counts": counts,
            "count": total,
            "sum": acc,
            "mean": acc / total if total else 0.0,
            "min": lo,
            "max": hi,
            "p50": bucket_percentile(self.bounds, counts, 50.0),
            "p95": bucket_percentile(self.bounds, counts, 95.0),
            "p99": bucket_percentile(self.bounds, counts, 99.0),
        }


class MetricsRegistry:
    """Process-wide named metrics with one export surface.

    Instruments are created on first use and live for the registry's
    lifetime; recording on a disabled registry costs one boolean check
    and touches nothing.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- control

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    # --------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, bounds)
                self._histograms[name] = instrument
        return instrument

    # ------------------------------------------------------ recording API

    def inc(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    # --------------------------------------------------------- absorption

    def absorb_profiler(self, profiler: Any, prefix: str = "perf") -> None:
        """Fold a :class:`repro.perf.Profiler` into the registry:
        timers become histograms (every recorded duration re-observed
        is unavailable, so total/count/min/max fold into a counter pair
        plus a histogram of means is lossy -- instead timers map to
        ``<prefix>.<label>`` counters for calls and total seconds),
        counters map one-to-one."""
        snap = profiler.as_dict()
        for label, stat in snap.get("timers", {}).items():
            self.counter(f"{prefix}.{label}.calls").inc(stat["calls"])
            self.counter(f"{prefix}.{label}.total_s").inc(stat["total_s"])
        for label, value in snap.get("counters", {}).items():
            self.counter(f"{prefix}.{label}").inc(value)

    def absorb_cache(self, cache: Any, prefix: str = "cache") -> None:
        """Fold :meth:`repro.exec.ResultCache.stats` counters in."""
        for key, value in cache.stats().items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if value >= 0:
                self.counter(f"{prefix}.{key}").inc(value)

    # ------------------------------------------------------------- export

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {
                name: gauges[name].value for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another process's :meth:`snapshot` into this registry
        (counters add, gauges last-write-wins, histograms merge by
        bucket)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_snap in snapshot.get("histograms", {}).items():
            self.histogram(
                name, bounds=tuple(hist_snap["bounds"])
            ).merge(hist_snap)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus charset (dots and any
    other punctuation become underscores)."""
    out = [
        ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
    ]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """A :meth:`MetricsRegistry.snapshot` in the Prometheus text
    exposition format (version 0.0.4).

    Counters and gauges map one to one; histograms emit the standard
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
    ``_count``, which is exactly what lets the fixed-bucket mergeable
    histograms scrape into any Prometheus-compatible stack.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} {_prom_value(snapshot['counters'][name])}"
        )
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric} {_prom_value(snapshot['gauges'][name])}"
        )
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{repr(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {int(hist["count"])}'
        )
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {int(hist['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (starts disabled)."""
    return _REGISTRY


def enable_metrics() -> MetricsRegistry:
    _REGISTRY.enable()
    return _REGISTRY


def disable_metrics() -> MetricsRegistry:
    _REGISTRY.disable()
    return _REGISTRY


__all__: List[str] = [
    "Counter",
    "DEFAULT_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_metrics",
    "prometheus_text",
]
