"""Declarative SLOs evaluated as multi-window burn rates.

A service-level objective here is a :class:`SLOSpec` -- "p99 latency
under 50 ms", "error rate under 1%", "availability at least 99%",
"cache hit rate at least 40%" -- and the :class:`SLOEvaluator` turns a
:class:`~repro.obs.recorder.FlightRecorder`'s sample ring into alert
state for each one.

The alerting model is the standard multi-window burn rate: each spec
names several look-back windows (a short one for detection speed, a
long one for noise rejection), the evaluator differences the cumulative
counter/histogram samples at each window's edge against the newest
sample, and a spec breaches only when its error budget is burning at
``burn_threshold``\\ x or faster in **every** window simultaneously.  A
single slow request spikes the short window but not the long one (no
alert); a sustained regression burns both (alert); recovery drains the
short window first and clears the alert while the long window is still
digesting the incident.

Burn rate is "fraction of error budget consumed per unit of budget
allowed", normalized so 1.0 means "exactly at objective":

- ``p99_latency``: budget is the 1% of requests allowed over the
  latency target; burn is the windowed fraction over target / 0.01,
  estimated from ``serve.latency_s`` histogram-bucket deltas via
  :func:`repro.obs.stats.bucket_fraction_above`.
- ``error_rate``: burn is windowed failure fraction / target.
- ``availability``: burn is windowed (1 - availability) / (1 - target),
  where availability counts completed against completed+failed+rejected.
- ``cache_hit``: a floor; burn is windowed (target - hit rate) / target.

State transitions write ``slo.breach`` / ``slo.recovered`` events to
the run ledger, and a spec that names a *workload* drives the owning
:class:`~repro.serve.cluster.ShardCluster`'s per-workload circuit
breaker: a breach records enough failures to trip the breaker open
(shedding load for the breaker's recovery window), a recovery records a
success to close it again.  That closes the loop from observed burn
rate back into admission control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ValidationError
from repro.obs.ledger import get_ledger
from repro.obs.stats import bucket_fraction_above, bucket_percentile

#: Supported objective kinds.
OBJECTIVES = ("p99_latency", "error_rate", "availability", "cache_hit")

#: Budget fraction backing the p99 latency objective: 1% of requests
#: may exceed the latency target before the budget burns at 1.0x.
P99_BUDGET = 0.01


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    *target* is the objective value: a latency bound in seconds for
    ``p99_latency``, a maximum fraction for ``error_rate``, a minimum
    fraction for ``availability``/``cache_hit``.  *windows* are
    look-back horizons in seconds, shortest to longest; *workload*
    optionally binds breaches to that workload's cluster breaker.
    """

    name: str
    objective: str
    target: float
    windows: Tuple[float, ...] = (1.0, 5.0)
    burn_threshold: float = 1.0
    workload: Optional[str] = None

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValidationError(
                f"unknown SLO objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if not self.windows:
            raise ValidationError("SLO spec needs at least one window")
        if any(w <= 0 for w in self.windows):
            raise ValidationError("SLO windows must be positive seconds")
        if self.target < 0:
            raise ValidationError("SLO target must be >= 0")
        if self.objective in ("error_rate",) and self.target <= 0:
            raise ValidationError(
                "error_rate target must be > 0 (it is the error budget)"
            )
        if self.objective in ("availability",) and not (
            0.0 <= self.target < 1.0 or self.target == 1.0
        ):
            raise ValidationError("availability target must be in [0, 1]")
        if self.burn_threshold <= 0:
            raise ValidationError("burn_threshold must be > 0")

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "target": self.target,
            "windows": list(self.windows),
            "burn_threshold": self.burn_threshold,
            "workload": self.workload,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SLOSpec":
        return cls(
            name=str(data["name"]),
            objective=str(data["objective"]),
            target=float(data["target"]),
            windows=tuple(
                float(w) for w in data.get("windows", (1.0, 5.0))
            ),
            burn_threshold=float(data.get("burn_threshold", 1.0)),
            workload=data.get("workload"),
        )


def _counter_delta(
    latest: Mapping[str, Any], edge: Mapping[str, Any], name: str
) -> float:
    return float(latest["counters"].get(name, 0.0)) - float(
        edge["counters"].get(name, 0.0)
    )


def _hist_delta(
    latest: Mapping[str, Any], edge: Mapping[str, Any], name: str
) -> Optional[Tuple[List[float], List[int]]]:
    new = latest.get("histograms", {}).get(name)
    if new is None:
        return None
    old = edge.get("histograms", {}).get(name)
    bounds = list(new["bounds"])
    counts = list(new["counts"])
    if old is not None and list(old["bounds"]) == bounds:
        counts = [
            int(n) - int(o) for n, o in zip(counts, old["counts"])
        ]
    return bounds, [max(c, 0) for c in counts]


class SLOEvaluator:
    """Evaluate :class:`SLOSpec` burn rates over recorder samples.

    Stateless per call except the per-spec ok/breached latch that
    drives ``slo.breach``/``slo.recovered`` transition events and the
    optional cluster breaker coupling.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec],
        cluster: Optional[Any] = None,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValidationError("SLO spec names must be unique")
        self.specs = list(specs)
        self.cluster = cluster
        self._breached: Dict[str, bool] = {
            spec.name: False for spec in self.specs
        }

    # ---------------------------------------------------------- windows

    @staticmethod
    def _window_edges(
        samples: Sequence[Mapping[str, Any]], windows: Sequence[float]
    ) -> Dict[float, Mapping[str, Any]]:
        """The oldest sample inside each look-back window."""
        latest_ts = float(samples[-1]["ts"])
        edges: Dict[float, Mapping[str, Any]] = {}
        for window in windows:
            cutoff = latest_ts - window
            edge = samples[0]
            for sample in samples:
                if float(sample["ts"]) >= cutoff:
                    edge = sample
                    break
            edges[window] = edge
        return edges

    def _burn(
        self,
        spec: SLOSpec,
        latest: Mapping[str, Any],
        edge: Mapping[str, Any],
    ) -> Dict[str, float]:
        """One window's burn rate and observed value for *spec*."""
        if spec.objective == "p99_latency":
            hist = _hist_delta(latest, edge, "serve.latency_s")
            if hist is None or sum(hist[1]) == 0:
                return {"value": 0.0, "burn": 0.0}
            bounds, counts = hist
            over = bucket_fraction_above(bounds, counts, spec.target)
            p99 = bucket_percentile(bounds, counts, 99.0)
            return {"value": p99, "burn": over / P99_BUDGET}
        if spec.objective == "error_rate":
            failed = _counter_delta(latest, edge, "serve.failed")
            done = failed + _counter_delta(
                latest, edge, "serve.completed"
            )
            rate = failed / done if done > 0 else 0.0
            return {"value": rate, "burn": rate / spec.target}
        if spec.objective == "availability":
            completed = _counter_delta(latest, edge, "serve.completed")
            bad = _counter_delta(
                latest, edge, "serve.failed"
            ) + _counter_delta(latest, edge, "serve.rejected")
            total = completed + bad
            avail = completed / total if total > 0 else 1.0
            budget = 1.0 - spec.target
            if budget <= 0.0:
                burn = 0.0 if avail >= 1.0 else float("inf")
            else:
                burn = (1.0 - avail) / budget
            return {"value": avail, "burn": burn}
        # cache_hit floor
        hits = _counter_delta(latest, edge, "serve.cache_hits")
        served = (
            hits
            + _counter_delta(latest, edge, "serve.deduped")
            + _counter_delta(latest, edge, "serve.computed")
        )
        rate = hits / served if served > 0 else 1.0
        burn = max(spec.target - rate, 0.0) / spec.target
        return {"value": rate, "burn": burn}

    # --------------------------------------------------------- evaluate

    def evaluate(
        self, samples: Sequence[Mapping[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Evaluate every spec against *samples* (oldest first).

        Returns one status record per spec -- name, objective, per-
        window burns, overall state -- and emits transition events /
        breaker actions for state changes.
        """
        statuses: List[Dict[str, Any]] = []
        for spec in self.specs:
            status: Dict[str, Any] = {
                "name": spec.name,
                "objective": spec.objective,
                "target": spec.target,
                "workload": spec.workload,
                "windows": {},
                "state": "ok",
            }
            if samples:
                edges = self._window_edges(list(samples), spec.windows)
                burning_all = True
                for window in spec.windows:
                    result = self._burn(
                        spec, samples[-1], edges[window]
                    )
                    status["windows"][window] = result
                    if result["burn"] < spec.burn_threshold:
                        burning_all = False
                breached = burning_all
            else:
                breached = False
            status["state"] = "breached" if breached else "ok"
            self._transition(spec, breached, status)
            statuses.append(status)
        return statuses

    def _transition(
        self, spec: SLOSpec, breached: bool, status: Dict[str, Any]
    ) -> None:
        was = self._breached[spec.name]
        if breached == was:
            return
        self._breached[spec.name] = breached
        ledger = get_ledger()
        burns = {
            str(window): round(result["burn"], 6)
            for window, result in status["windows"].items()
        }
        if breached:
            ledger.event(
                "slo.breach",
                slo=spec.name,
                objective=spec.objective,
                target=spec.target,
                burns=burns,
            )
            self._drive_breaker(spec, open_breaker=True)
        else:
            ledger.event(
                "slo.recovered",
                slo=spec.name,
                objective=spec.objective,
                target=spec.target,
                burns=burns,
            )
            self._drive_breaker(spec, open_breaker=False)

    def _drive_breaker(self, spec: SLOSpec, *, open_breaker: bool) -> None:
        """Couple a workload-bound spec into the cluster's admission
        control: breach trips the workload breaker open (load is shed
        until its recovery window), recovery records a success."""
        if self.cluster is None or spec.workload is None:
            return
        try:
            breaker = self.cluster.breaker(spec.workload)
        except Exception:
            return
        if open_breaker:
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
        else:
            breaker.record_success()

    def breached(self) -> List[str]:
        """Names of specs currently latched breached."""
        return [
            name for name, state in self._breached.items() if state
        ]


def evaluate_slos(
    specs: Sequence[SLOSpec],
    samples: Sequence[Mapping[str, Any]],
    cluster: Optional[Any] = None,
) -> List[Dict[str, Any]]:
    """One-shot evaluation of *specs* over *samples* (fresh evaluator,
    so no transition events from prior state)."""
    return SLOEvaluator(specs, cluster=cluster).evaluate(samples)


__all__ = [
    "OBJECTIVES",
    "P99_BUDGET",
    "SLOEvaluator",
    "SLOSpec",
    "evaluate_slos",
]
