"""Human-readable views over traces and the run ledger.

Backs the ``repro obs`` CLI: ``show <trace_id>`` renders one trace as
an indented span tree (durations, status, attributes) followed by the
trace's ledger events; ``summary`` aggregates span durations by name
across all traces through the shared :func:`repro.obs.stats.summary`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.obs.stats import summary


def _format_attrs(record: Mapping[str, Any]) -> str:
    attrs = dict(record.get("attributes", {}))
    attrs.update(record.get("volatile", {}))
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"  [{inner}]"


def render_trace(
    spans: Sequence[Mapping[str, Any]],
    events: Sequence[Mapping[str, Any]] = (),
) -> str:
    """One trace as an indented tree, children ordered by span order.

    Spans whose parent is missing from the set (e.g. filtered exports)
    render as roots rather than disappearing.
    """
    if not spans:
        return "(no spans)"
    ids = {s["span_id"] for s in spans}
    children: Dict[str, List[Mapping[str, Any]]] = {}
    roots: List[Mapping[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id") or ""
        if parent and parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def order_key(span: Mapping[str, Any]) -> Any:
        return (span.get("order", 0), span["span_id"])

    lines: List[str] = []

    def walk(span: Mapping[str, Any], depth: int) -> None:
        duration_ms = float(span.get("duration_s", 0.0)) * 1000.0
        status = span.get("status", "ok")
        marker = "" if status == "ok" else f"  !{status}"
        lines.append(
            f"{'  ' * depth}- {span['name']}  "
            f"{duration_ms:.3f} ms{marker}{_format_attrs(span)}"
        )
        for child in sorted(children.get(span["span_id"], []),
                            key=order_key):
            walk(child, depth + 1)

    for root in sorted(roots, key=order_key):
        walk(root, 0)

    if events:
        lines.append("events:")
        for event in events:
            extras = {
                k: v
                for k, v in event.items()
                if k not in ("event", "trace_id", "ts", "seq")
            }
            detail = "".join(
                f" {k}={extras[k]}" for k in sorted(extras)
            )
            lines.append(f"  * {event['event']}{detail}")
    return "\n".join(lines)


def summarize_spans(
    spans: Sequence[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Per-span-name duration summaries (count/mean/max/p50/p95/p99
    seconds) across every trace in *spans*."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(str(span["name"]), []).append(
            float(span.get("duration_s", 0.0))
        )
    return {name: summary(by_name[name]) for name in sorted(by_name)}


def render_summary(
    spans: Sequence[Mapping[str, Any]],
    events: Sequence[Mapping[str, Any]] = (),
) -> str:
    """The ``repro obs summary`` table: traces, spans per name with
    duration percentiles, event counts."""
    trace_ids: Dict[str, None] = {}
    for span in spans:
        trace_ids.setdefault(str(span["trace_id"]))
    lines = [
        f"traces: {len(trace_ids)}   spans: {len(spans)}   "
        f"events: {len(events)}"
    ]
    table = summarize_spans(spans)
    if table:
        lines.append(
            f"{'span':<28} {'count':>6} {'mean ms':>9} "
            f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'max ms':>9}"
        )
        for name, stats in table.items():
            lines.append(
                f"{name:<28} {stats['count']:>6.0f} "
                f"{stats['mean'] * 1e3:>9.3f} "
                f"{stats['p50'] * 1e3:>9.3f} "
                f"{stats['p95'] * 1e3:>9.3f} "
                f"{stats['p99'] * 1e3:>9.3f} "
                f"{stats['max'] * 1e3:>9.3f}"
            )
    counts: Dict[str, int] = {}
    for event in events:
        counts[str(event["event"])] = counts.get(str(event["event"]), 0) + 1
    for name in sorted(counts):
        lines.append(f"event {name}: {counts[name]}")
    return "\n".join(lines)


def render_top(
    report: Mapping[str, Any],
    samples: Sequence[Mapping[str, Any]] = (),
) -> str:
    """The ``repro obs top`` view: slowest requests with their
    critical-path phase split, plus latest recorder gauges when a
    flight sample set is available."""
    from repro.obs.critical import PHASES

    lines = [f"requests: {report.get('requests', 0)}"]
    means = report.get("phase_means_s", {})
    if report.get("requests"):
        mean_line = "  ".join(
            f"{phase}={float(means.get(phase, 0.0)) * 1e3:.3f}ms"
            for phase in PHASES
        )
        lines.append(f"phase means: {mean_line}")
    top = report.get("top", [])
    if top:
        lines.append(
            f"{'trace':<18} {'workload':<16} {'total ms':>9}  phases"
        )
        for entry in top:
            phases = entry.get("phases", {})
            dominant = sorted(
                (
                    (phase, float(phases.get(phase, 0.0)))
                    for phase in PHASES
                ),
                key=lambda item: (-item[1], item[0]),
            )[:3]
            split = " ".join(
                f"{phase}={value * 1e3:.3f}ms"
                for phase, value in dominant
                if value > 0.0
            )
            lines.append(
                f"{str(entry['trace_id'])[:16]:<18} "
                f"{str(entry.get('workload', ''))[:16]:<16} "
                f"{float(entry['total_s']) * 1e3:>9.3f}  {split}"
            )
    if samples:
        latest = samples[-1]
        gauges = latest.get("gauges", {})
        if gauges:
            gauge_line = "  ".join(
                f"{name}={gauges[name]:g}" for name in sorted(gauges)
            )
            lines.append(f"gauges: {gauge_line}")
    return "\n".join(lines)


def select_trace(
    spans: Sequence[Mapping[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """Spans of one trace, accepting unique trace-id prefixes."""
    exact = [dict(s) for s in spans if s["trace_id"] == trace_id]
    if exact:
        return exact
    matches = sorted(
        {
            str(s["trace_id"])
            for s in spans
            if str(s["trace_id"]).startswith(trace_id)
        }
    )
    if len(matches) == 1:
        return [dict(s) for s in spans if s["trace_id"] == matches[0]]
    return []


__all__: List[str] = [
    "render_summary",
    "render_top",
    "render_trace",
    "select_trace",
    "summarize_spans",
]
