"""Append-only run ledger: the event log behind ``repro obs show``.

Spans answer "how long"; the ledger answers "what happened".  Every
notable lifecycle event -- run started/finished, fault injected, retry
scheduled, cache hit, admission rejected, checkpoint saved -- is
appended as one JSON record, keyed by ``trace_id`` whenever the event
happened under an active trace context, so a request's full story
(queue wait -> batch -> worker -> kernels -> retries) reconstructs
from one grep of the ledger plus the trace's spans.

Same enablement policy as the tracer and metrics registry: disabled by
default, one boolean check on the hot path.  Worker processes capture
events into a thread-local buffer (:meth:`RunLedger.capture`) that the
coordinator merges with :meth:`RunLedger.extend`, mirroring the span
envelope, so events survive the process-pool hop too.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

#: Event-record keys that vary run to run (wall clock, measured
#: delays, merge bookkeeping); the canonical form strips them.
#: ``shard_seq`` is the originating shard's local sequence number,
#: preserved when :func:`repro.serve.procshard.merge_shard_events`
#: re-sorts a shipped batch deterministically.
VOLATILE_EVENT_FIELDS = (
    "ts", "seq", "elapsed_s", "delay_s", "wait_s", "shard_seq",
)


class RunLedger:
    """Process-wide append-only event log."""

    def __init__(
        self, enabled: bool = False, max_events: int = 200_000
    ) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self._watchers: List[Callable[[Dict[str, Any]], Any]] = []

    # ------------------------------------------------------------- control

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._events = []
            self._seq = 0
            self.dropped = 0

    # ------------------------------------------------------------- record

    def event(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        **fields: Any,
    ) -> Optional[Dict[str, Any]]:
        """Append one event.

        With no explicit *trace_id* the tracer's active context (if
        any) supplies one, which is what keys serve/exec/resilience
        events to the request they belong to without every call site
        threading ids around.
        """
        if not self.enabled:
            return None
        if trace_id is None:
            from repro.obs.trace import get_tracer

            trace_id = get_tracer().current_trace_id()
        record: Dict[str, Any] = {
            "event": name,
            "trace_id": trace_id or "",
            "ts": time.time(),
        }
        record.update(fields)
        buffer = getattr(self._local, "buffer", None)
        if buffer is not None:
            buffer.append(record)
            return record
        self._append(record)
        self._notify(record)
        return record

    # ------------------------------------------------------------ watchers

    def add_watcher(
        self, watcher: Callable[[Dict[str, Any]], Any]
    ) -> None:
        """Register *watcher* to be called (outside the ledger lock)
        with every event recorded through :meth:`event` on this
        process's direct path -- captured worker events are merged in
        bulk and do not fire watchers.  This is how the flight recorder
        triggers crash dumps on ``shard.killed``/``shard.down`` without
        the hot path paying anything while no watcher is registered."""
        with self._lock:
            if watcher not in self._watchers:
                self._watchers.append(watcher)

    def remove_watcher(
        self, watcher: Callable[[Dict[str, Any]], Any]
    ) -> None:
        with self._lock:
            if watcher in self._watchers:
                self._watchers.remove(watcher)

    def _notify(self, record: Dict[str, Any]) -> None:
        if not self._watchers:
            return
        if getattr(self._local, "in_watcher", False):
            return  # a watcher recording events must not recurse
        self._local.in_watcher = True
        try:
            for watcher in list(self._watchers):
                try:
                    watcher(record)
                except Exception:  # pragma: no cover - defensive
                    continue
        finally:
            self._local.in_watcher = False

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            record = dict(record)
            record["seq"] = self._seq
            self._seq += 1
            self._events.append(record)

    @contextmanager
    def capture(
        self, buffer: List[Dict[str, Any]]
    ) -> Iterator[List[Dict[str, Any]]]:
        """Redirect this thread's events into *buffer* (the envelope
        mechanism for process-pool workers)."""
        previous = getattr(self._local, "buffer", None)
        self._local.buffer = buffer
        try:
            yield buffer
        finally:
            self._local.buffer = previous

    def extend(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Merge captured worker events, assigning local sequence
        numbers on arrival.  A coordinator that is itself running under
        :meth:`capture` forwards the records outward instead."""
        buffer = getattr(self._local, "buffer", None)
        if buffer is not None:
            buffer.extend(dict(r) for r in records)
            return
        for record in records:
            self._append(dict(record))

    # ------------------------------------------------------------- report

    def events(
        self, trace_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        with self._lock:
            records = [dict(r) for r in self._events]
        if trace_id is not None:
            records = [r for r in records if r["trace_id"] == trace_id]
        return records

    def canonical_json(self, trace_id: Optional[str] = None) -> str:
        """Deterministic encoding: events grouped per trace (sorted by
        trace id), volatile fields stripped, per-trace arrival order
        kept.  Cross-trace interleaving is scheduling noise, so it is
        exactly what this form factors out."""
        by_trace: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.events(trace_id):
            entry = {
                k: v
                for k, v in record.items()
                if k not in VOLATILE_EVENT_FIELDS
            }
            by_trace.setdefault(str(record["trace_id"]), []).append(entry)
        grouped = [
            {"trace_id": tid, "events": by_trace[tid]}
            for tid in sorted(by_trace)
        ]
        return json.dumps(
            grouped,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One event per line; returns the event count."""
        records = self.events()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_ledger_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load event records written by :meth:`RunLedger.export_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


_LEDGER = RunLedger()


def get_ledger() -> RunLedger:
    """The process-wide ledger (starts disabled)."""
    return _LEDGER


def enable_ledger() -> RunLedger:
    _LEDGER.enable()
    return _LEDGER


def disable_ledger() -> RunLedger:
    _LEDGER.disable()
    return _LEDGER


__all__ = [
    "RunLedger",
    "VOLATILE_EVENT_FIELDS",
    "disable_ledger",
    "enable_ledger",
    "get_ledger",
    "load_ledger_jsonl",
]
