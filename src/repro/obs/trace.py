"""Deterministic end-to-end tracing across serve, exec and kernels.

Dapper-style distributed tracing, scaled to this suite: every request
gets a trace, every interesting stage of its life (queue wait, batch
dispatch, worker evaluation, inner kernels) gets a span, and context is
propagated *explicitly* across thread and process boundaries through
the task envelopes of :class:`~repro.exec.ParallelEvaluator` and
:mod:`repro.serve`.  Two properties make these traces different from
wall-clock-only tracing:

- **deterministic identity** -- trace ids derive from the request's
  content digest plus a per-service occurrence counter, and span ids
  derive from ``(trace_id, parent_id, name, order)`` where *order* is a
  per-parent monotonic counter.  Rerunning the same request stream
  yields byte-identical trace structure (ids, parents, attributes);
  only the wall-clock fields differ, and the canonical form excludes
  them.  A span created inside a process-pool worker therefore gets the
  *same* id it would get in a serial run, which is what lets traces be
  compared across execution modes at all;
- **near-zero disabled cost** -- every hook first checks one boolean
  (the :mod:`repro.perf` policy); the global tracer starts disabled.

Exports: newline-delimited JSON (one span record per line, loadable by
:func:`load_trace_jsonl`) and the Chrome ``trace_event`` format --
write :meth:`Tracer.to_chrome` to a file and open it in
``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Span-record keys that vary between two otherwise-identical runs
#: (wall-clock timing); :func:`canonical_spans` strips them.
VOLATILE_SPAN_FIELDS = ("start_s", "end_s", "duration_s")

_ID_HEX = 16  # 64-bit hex ids, Dapper-sized


def _derive_id(*parts: str) -> str:
    """Stable hex id from the given identity parts."""
    material = "\x1f".join(parts)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:_ID_HEX]


def derive_trace_id(material: str, occurrence: int = 0) -> str:
    """Deterministic trace id for the *occurrence*-th request with the
    given content *material* (normally a request digest)."""
    return _derive_id("trace", material, str(occurrence))


def derive_span_id(
    trace_id: str, parent_id: str, name: str, order: int
) -> str:
    """Deterministic span id: same position in the same trace -> same
    id, in a worker process or in a serial run alike."""
    return _derive_id("span", trace_id, parent_id, name, str(order))


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity: which trace, and which span is the
    parent of whatever happens next.  Crossing a thread or process
    boundary means shipping one of these in the task envelope."""

    trace_id: str
    span_id: str = ""

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: Mapping[str, str]) -> "TraceContext":
        return cls(
            trace_id=str(wire["trace_id"]),
            span_id=str(wire.get("span_id", "")),
        )


class Span:
    """One named, timed unit of work inside a trace.

    Spans are open until :meth:`Tracer.end_span` (or the ``span()``
    context manager exit) stamps the end time and files the record.
    *attributes* are part of the span's deterministic identity;
    *volatile* attributes (batch occupancy, timing-dependent facts) are
    reported but excluded from the canonical form.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "order",
        "start_s", "end_s", "status", "attributes", "volatile",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str,
        order: int,
        start_s: float,
        attributes: Optional[Dict[str, Any]] = None,
        volatile: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.order = order
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.attributes = dict(attributes or {})
        self.volatile = dict(volatile or {})

    @property
    def context(self) -> TraceContext:
        """Context for children of this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_record(self) -> Dict[str, Any]:
        end = self.end_s if self.end_s is not None else self.start_s
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "order": self.order,
            "start_s": self.start_s,
            "end_s": end,
            "duration_s": end - self.start_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "volatile": dict(self.volatile),
        }


def canonical_spans(
    records: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """*records* reduced to their deterministic identity.

    Drops :data:`VOLATILE_SPAN_FIELDS` and the volatile attribute dict,
    and orders spans as a depth-first walk of each trace tree (children
    by ``order``), traces sorted by id -- so two runs of the same
    request stream produce byte-identical canonical JSON regardless of
    worker scheduling or batch timing.

    Two further normalizations make *stitched* cluster traces compare
    byte-identical across backends and chaos replays: duplicate span
    ids collapse to their first record (a replayed attempt of the same
    request re-derives the same ids, so a kill-and-replay trace equals
    its fault-free twin), and spans whose volatile dict carries
    ``ephemeral: True`` (execution-mode artifacts like the shm
    transport encode) are excluded entirely.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    seen_ids: set = set()
    for record in records:
        volatile = record.get("volatile") or {}
        if volatile.get("ephemeral"):
            continue
        identity = (str(record["trace_id"]), str(record["span_id"]))
        if identity in seen_ids:
            continue
        seen_ids.add(identity)
        entry = {
            k: v
            for k, v in record.items()
            if k not in VOLATILE_SPAN_FIELDS and k != "volatile"
        }
        by_trace.setdefault(str(record["trace_id"]), []).append(entry)

    ordered: List[Dict[str, Any]] = []
    for trace_id in sorted(by_trace):
        spans = by_trace[trace_id]
        children: Dict[str, List[Dict[str, Any]]] = {}
        ids = {s["span_id"] for s in spans}
        roots = []
        for span in spans:
            parent = span.get("parent_id") or ""
            if parent and parent in ids:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        roots.sort(key=lambda s: (s.get("order", 0), s["span_id"]))
        stack = list(reversed(roots))
        while stack:
            span = stack.pop()
            ordered.append(span)
            kids = children.get(span["span_id"], [])
            kids.sort(key=lambda s: (s.get("order", 0), s["span_id"]))
            stack.extend(reversed(kids))
    return ordered


class _Frame:
    """One thread-local activation: a context plus an optional sink
    that captures finished spans instead of the global list.

    Sink-bearing frames (the worker envelope mechanism) also scope the
    span-order counters to the activation: a replayed evaluation of the
    same request starts counting from zero again, so its spans derive
    the same deterministic ids as the first attempt -- which is what
    lets a kill-and-replay trace collapse onto its fault-free twin in
    :func:`canonical_spans`.
    """

    __slots__ = ("ctx", "sink", "orders")

    def __init__(
        self, ctx: TraceContext, sink: Optional[List[Dict[str, Any]]]
    ) -> None:
        self.ctx = ctx
        self.sink = sink
        self.orders: Optional[Dict[Tuple[str, str], int]] = (
            {} if sink is not None else None
        )


class Tracer:
    """Process-wide span collector with explicit context propagation.

    All span creation goes through the thread's activation stack: a
    frame is pushed either by :meth:`activate` (entering a propagated
    context, e.g. in a worker) or by an open :meth:`span` (children
    nest under it).  Span ids are deterministic (see module docstring);
    the per-``(trace_id, parent_id)`` order counters that feed them are
    trace-scoped, so a fresh tracer in a worker process allocates the
    same ids a long-lived serial tracer would.
    """

    def __init__(
        self, name: str = "repro", enabled: bool = False,
        max_spans: int = 100_000,
    ) -> None:
        self.name = name
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Dict[str, Any]] = []
        self._orders: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------- control

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected spans and order counters (keeps enablement)."""
        with self._lock:
            self._spans = []
            self._orders = {}
            self.dropped = 0

    # ------------------------------------------------------- context stack

    def _frames(self) -> List[_Frame]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def current(self) -> Optional[TraceContext]:
        """The active context of this thread, or ``None``."""
        frames = getattr(self._local, "frames", None)
        if not frames:
            return None
        return frames[-1].ctx

    def current_trace_id(self) -> Optional[str]:
        ctx = self.current()
        return ctx.trace_id if ctx is not None else None

    def _current_sink(self) -> Optional[List[Dict[str, Any]]]:
        for frame in reversed(self._frames()):
            if frame.sink is not None:
                return frame.sink
        return None

    @contextmanager
    def activate(
        self,
        ctx: TraceContext,
        sink: Optional[List[Dict[str, Any]]] = None,
    ) -> Iterator[TraceContext]:
        """Make *ctx* the thread's active context.

        With a *sink*, spans finished inside the activation are captured
        into it instead of the tracer's global list -- the envelope
        mechanism workers use to ship spans back to the coordinator.
        """
        frames = self._frames()
        frames.append(_Frame(ctx, sink))
        try:
            yield ctx
        finally:
            frames.pop()

    # ------------------------------------------------------- span creation

    def next_order(self, trace_id: str, parent_id: str) -> int:
        key = (trace_id, parent_id)
        frames = getattr(self._local, "frames", None)
        if frames:
            for frame in reversed(frames):
                if frame.orders is not None:
                    order = frame.orders.get(key, 0)
                    frame.orders[key] = order + 1
                    return order
        with self._lock:
            order = self._orders.get(key, 0)
            self._orders[key] = order + 1
        return order

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        order: Optional[int] = None,
        attributes: Optional[Dict[str, Any]] = None,
        volatile: Optional[Dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> Optional[Span]:
        """Open a span explicitly (paired with :meth:`end_span`).

        Without *trace_id*, the thread's active context supplies both
        the trace and the parent; a tracer with neither returns ``None``
        (spans never float outside a trace).
        """
        if not self.enabled:
            return None
        if trace_id is None:
            ctx = self.current()
            if ctx is None:
                return None
            trace_id = ctx.trace_id
            if parent_id is None:
                parent_id = ctx.span_id
        parent_id = parent_id or ""
        if order is None:
            order = self.next_order(trace_id, parent_id)
        span = Span(
            name,
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, parent_id, name, order),
            parent_id=parent_id,
            order=order,
            start_s=time.time() if start_s is None else start_s,
            attributes=attributes,
            volatile=volatile,
        )
        return span

    def end_span(
        self,
        span: Optional[Span],
        *,
        status: str = "ok",
        end_s: Optional[float] = None,
        sink: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Stamp *span*'s end time and file its record (no-op for the
        ``None`` a disabled :meth:`start_span` returned)."""
        if span is None:
            return
        span.end_s = time.time() if end_s is None else end_s
        span.status = status
        self._file(span.to_record(), sink)

    def record_span(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: str = "",
        order: Optional[int] = None,
        start_s: float,
        end_s: float,
        status: str = "ok",
        attributes: Optional[Dict[str, Any]] = None,
        volatile: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """File an already-measured span (e.g. a queue wait whose start
        was stamped before dispatch)."""
        span = self.start_span(
            name,
            trace_id=trace_id,
            parent_id=parent_id,
            order=order,
            attributes=attributes,
            volatile=volatile,
            start_s=start_s,
        )
        if span is not None:
            self.end_span(span, status=status, end_s=end_s)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        attributes: Optional[Dict[str, Any]] = None,
        volatile: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Optional[Span]]:
        """Context manager: a span under the thread's active context.

        No active context (or a disabled tracer) means no span -- the
        body still runs, the hook costs one boolean check.  The span is
        pushed as the active context, so nested ``span()`` calls (and
        bridged :mod:`repro.perf` kernel timers) become its children.
        """
        if not self.enabled:
            yield None
            return
        ctx = self.current()
        if ctx is None:
            yield None
            return
        span = self.start_span(
            name, attributes=attributes, volatile=volatile
        )
        if span is None:  # pragma: no cover - raced disable
            yield None
            return
        frames = self._frames()
        frames.append(_Frame(span.context, None))
        status = "ok"
        try:
            yield span
        except BaseException:
            status = "error"
            raise
        finally:
            frames.pop()
            self.end_span(span, status=status)

    def _file(
        self,
        record: Dict[str, Any],
        sink: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        target = sink if sink is not None else self._current_sink()
        if target is not None:
            target.append(record)
            return
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(record)

    def add_records(
        self, records: Sequence[Mapping[str, Any]]
    ) -> None:
        """Merge span records shipped back from a worker envelope."""
        with self._lock:
            for record in records:
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(dict(record))

    def merge_records(
        self, records: Sequence[Mapping[str, Any]]
    ) -> None:
        """Like :meth:`add_records`, but routed through the calling
        thread's active sink (if any) -- so a coordinator that is itself
        running under a capture envelope forwards worker spans outward
        instead of filing them locally."""
        for record in records:
            self._file(dict(record))

    # ------------------------------------------------------------- reports

    def spans(
        self, trace_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        with self._lock:
            records = [dict(r) for r in self._spans]
        if trace_id is not None:
            records = [r for r in records if r["trace_id"] == trace_id]
        return records

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.spans():
            seen.setdefault(record["trace_id"])
        return list(seen)

    def canonical_json(self, trace_id: Optional[str] = None) -> str:
        """Byte-identical-across-reruns encoding of the collected
        traces (wall-clock fields excluded)."""
        return json.dumps(
            canonical_spans(self.spans(trace_id)),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one span record per line; returns the span count."""
        records = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def to_chrome(self) -> Dict[str, Any]:
        return chrome_trace(self.spans())


def load_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span records written by :meth:`Tracer.export_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def chrome_trace(
    records: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """*records* as a Chrome ``trace_event`` JSON object.

    Complete (``"ph": "X"``) events, one logical thread lane per trace
    (lanes numbered in first-seen order and labelled with the trace
    id), loadable in ``chrome://tracing`` and Perfetto.
    """
    lanes: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        trace_id = str(record["trace_id"])
        if trace_id not in lanes:
            lanes[trace_id] = len(lanes) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": lanes[trace_id],
                    "args": {"name": f"trace {trace_id}"},
                }
            )
        args = dict(record.get("attributes", {}))
        args.update(record.get("volatile", {}))
        args.update(
            {
                "trace_id": trace_id,
                "span_id": record["span_id"],
                "parent_id": record.get("parent_id", ""),
                "status": record.get("status", "ok"),
            }
        )
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": float(record["start_s"]) * 1e6,
                "dur": max(
                    0.0,
                    (float(record["end_s"]) - float(record["start_s"]))
                    * 1e6,
                ),
                "pid": 1,
                "tid": lanes[trace_id],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------- registry

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (starts disabled)."""
    return _TRACER


def enable_tracing() -> Tracer:
    """Enable the tracer and bridge :mod:`repro.perf` timers to spans.

    After this, every ``@profiled`` kernel timer that fires under an
    active trace context also emits a child span with the same label --
    which is how kernel timings show up inside request traces without
    instrumenting the kernels twice.
    """
    from repro.perf.profiler import set_span_hook

    _TRACER.enable()
    set_span_hook(lambda label: _TRACER.span(label))
    return _TRACER


def disable_tracing() -> Tracer:
    from repro.perf.profiler import set_span_hook

    _TRACER.disable()
    set_span_hook(None)
    return _TRACER


__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "VOLATILE_SPAN_FIELDS",
    "canonical_spans",
    "chrome_trace",
    "derive_span_id",
    "derive_trace_id",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "load_trace_jsonl",
]
