"""Critical-path analysis over stitched request traces.

A stitched trace answers "where did this request's wall time go?" --
but only after someone decomposes the span tree into phases.  This
module does that decomposition once, with one phase taxonomy shared by
the CLI (``repro obs critical-path``), the top-N report (``repro obs
top``) and the regression-attribution comparison:

- ``admission_wait``: ``queue.wait`` spans -- time parked in the
  service queue before a batch picked the request up;
- ``batch_wait``: ``batch`` span time not covered by worker execution
  -- co-batching overhead (waiting for batch-mates, merge bookkeeping);
- ``eval``: ``worker`` spans -- the actual evaluation, including its
  bridged kernel sub-spans;
- ``transport``: ``transport.*`` / ``shm.*`` spans -- process-shard
  encode and shared-memory traffic (ephemeral spans, so they appear in
  raw exports and here, never in canonical identity);
- ``cache``: ``cache.*`` spans;
- ``route_merge``: ``cluster.request`` time not covered by the shard's
  ``request`` span -- router dispatch, response pump, replay overhead;
- ``other``: whatever the root measured that no phase claims.

The unit of analysis is a *request subtree*: every ``cluster.request``
span, plus every ``request`` span not under one, is a root, so a
campaign trace carrying dozens of dispatched evaluations under one
campaign root decomposes into dozens of request breakdowns -- same
taxonomy as a standalone serve trace.

Durations are taken from the recorded ``duration_s`` fields (volatile:
real measurements, not part of canonical trace identity), so breakdown
numbers vary run to run even when the trace *structure* is
byte-identical -- which is exactly the split the observability plane
promises: identity is deterministic, timings are honest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Phase keys, in report order.
PHASES = (
    "admission_wait",
    "batch_wait",
    "cache",
    "transport",
    "eval",
    "route_merge",
    "other",
)


def _phase_of(name: str) -> Optional[str]:
    if name == "queue.wait":
        return "admission_wait"
    if name == "worker":
        return "eval"
    if name.startswith("cache."):
        return "cache"
    if name.startswith("transport.") or name.startswith("shm."):
        return "transport"
    return None


def _duration(record: Mapping[str, Any]) -> float:
    return float(record.get("duration_s", 0.0) or 0.0)


def _subtree(
    root: Mapping[str, Any],
    children: Mapping[Any, List[Mapping[str, Any]]],
) -> List[Mapping[str, Any]]:
    out: List[Mapping[str, Any]] = []
    stack = [root]
    while stack:
        record = stack.pop()
        out.append(record)
        key = (str(record["trace_id"]), str(record["span_id"]))
        stack.extend(children.get(key, ()))
    return out


def _breakdown(
    root: Mapping[str, Any],
    records: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Phase decomposition of one request subtree rooted at *root*."""
    is_cluster = root["name"] == "cluster.request"
    phases: Dict[str, float] = {phase: 0.0 for phase in PHASES}
    batch_s = 0.0
    request_s = 0.0
    request_root: Optional[Mapping[str, Any]] = None
    for record in records:
        name = record["name"]
        phase = _phase_of(name)
        if phase is not None:
            phases[phase] += _duration(record)
        elif name == "batch":
            batch_s += _duration(record)
        elif name == "request":
            request_s += _duration(record)
            if request_root is None:
                request_root = record
    phases["batch_wait"] = max(batch_s - phases["eval"], 0.0)
    if is_cluster:
        phases["route_merge"] = max(_duration(root) - request_s, 0.0)
    total = _duration(root)
    accounted = sum(phases[p] for p in PHASES if p != "other")
    phases["other"] = max(total - accounted, 0.0)
    attributes = root.get("attributes") or {}
    if not attributes.get("workload") and request_root is not None:
        attributes = request_root.get("attributes") or {}
    return {
        "trace_id": str(root["trace_id"]),
        "span_id": str(root["span_id"]),
        "workload": attributes.get("workload", ""),
        "status": root.get("status", "ok"),
        "total_s": total,
        "phases": phases,
    }


def request_breakdowns(
    records: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Every request subtree's breakdown, in stable (trace, span)
    order.  Roots are ``cluster.request`` spans plus ``request`` spans
    not parented under one (direct-service submissions)."""
    # Parent links are scoped per trace: span ids are derived from
    # their trace id so they cannot collide in practice, but synthetic
    # or hand-edited records should not cross-link either.
    children: Dict[Any, List[Mapping[str, Any]]] = {}
    cluster_ids = set()
    for record in records:
        key = (
            str(record["trace_id"]),
            str(record.get("parent_id", "")),
        )
        children.setdefault(key, []).append(record)
        if record["name"] == "cluster.request":
            cluster_ids.add(str(record["span_id"]))
    roots = [
        record
        for record in records
        if record["name"] == "cluster.request"
        or (
            record["name"] == "request"
            and str(record.get("parent_id", "")) not in cluster_ids
        )
    ]
    roots.sort(
        key=lambda r: (str(r["trace_id"]), str(r["span_id"]))
    )
    return [
        _breakdown(root, _subtree(root, children)) for root in roots
    ]


def trace_breakdown(
    records: Sequence[Mapping[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Breakdown of the single request in *records* (one trace's
    spans), or ``None`` when it holds no request subtree."""
    breakdowns = request_breakdowns(records)
    return breakdowns[0] if breakdowns else None


def critical_path_report(
    records: Sequence[Mapping[str, Any]], top: int = 10
) -> Dict[str, Any]:
    """Breakdown of every request subtree in *records*, plus
    aggregates: ``{"requests": N, "phase_totals_s", "phase_means_s",
    "top"}`` where ``top`` lists the *top* slowest requests, slowest
    first (ties broken by ids so the report order is stable)."""
    breakdowns = request_breakdowns(records)
    breakdowns.sort(
        key=lambda b: (-b["total_s"], b["trace_id"], b["span_id"])
    )
    totals = {phase: 0.0 for phase in PHASES}
    for breakdown in breakdowns:
        for phase in PHASES:
            totals[phase] += breakdown["phases"][phase]
    count = len(breakdowns)
    return {
        "requests": count,
        "phase_totals_s": totals,
        "phase_means_s": {
            phase: (totals[phase] / count if count else 0.0)
            for phase in PHASES
        },
        "top": breakdowns[: max(int(top), 0)],
    }


def compare_reports(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> Dict[str, Any]:
    """Attribute a latency regression between two critical-path
    reports: per-phase mean deltas, sorted by how much each phase
    moved, plus the single phase that explains the most of it."""
    base_means = baseline.get("phase_means_s", {})
    cur_means = current.get("phase_means_s", {})
    deltas = {
        phase: float(cur_means.get(phase, 0.0))
        - float(base_means.get(phase, 0.0))
        for phase in PHASES
    }
    ranked = sorted(
        deltas.items(), key=lambda item: (-item[1], item[0])
    )
    total_delta = sum(deltas.values())
    culprit, culprit_delta = ranked[0]
    return {
        "total_delta_s": total_delta,
        "phase_deltas_s": dict(deltas),
        "ranked": [
            {"phase": phase, "delta_s": delta}
            for phase, delta in ranked
        ],
        "culprit": culprit if culprit_delta > 0 else None,
    }


__all__ = [
    "PHASES",
    "compare_reports",
    "critical_path_report",
    "request_breakdowns",
    "trace_breakdown",
]
