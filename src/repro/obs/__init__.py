"""repro.obs -- tracing, metrics, and the run ledger in one spine.

Three pillars, one enablement policy (disabled by default, single
boolean check on every hot path):

- :mod:`repro.obs.trace` -- deterministic end-to-end request traces
  with explicit context propagation across thread and process
  boundaries, exported as JSONL or Chrome ``trace_event`` JSON;
- :mod:`repro.obs.metrics` -- process-wide Counter/Gauge/Histogram
  registry with mergeable fixed-bucket histograms, absorbing the
  serve/perf/cache metric stores behind one ``snapshot()``;
- :mod:`repro.obs.ledger` -- append-only event log keyed by trace id
  (run/fault/retry/cache/admission/checkpoint events).

``enable()``/``disable()`` flip all three together, which is what the
``repro serve --trace-dir`` path and the tests use.
"""

from repro.obs.ledger import (
    RunLedger,
    disable_ledger,
    enable_ledger,
    get_ledger,
    load_ledger_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
)
from repro.obs.report import (
    render_summary,
    render_trace,
    select_trace,
    summarize_spans,
)
from repro.obs.stats import bucket_percentile, percentile, summary
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    canonical_spans,
    chrome_trace,
    derive_span_id,
    derive_trace_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace_jsonl,
)


def enable() -> None:
    """Turn on all three pillars (tracing + perf span bridge, metrics,
    ledger)."""
    enable_tracing()
    enable_metrics()
    enable_ledger()


def disable() -> None:
    """Turn all three pillars off (collected data is kept; use the
    per-pillar ``reset()`` to drop it)."""
    disable_tracing()
    disable_metrics()
    disable_ledger()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLedger",
    "Span",
    "TraceContext",
    "Tracer",
    "bucket_percentile",
    "canonical_spans",
    "chrome_trace",
    "derive_span_id",
    "derive_trace_id",
    "disable",
    "disable_ledger",
    "disable_metrics",
    "disable_tracing",
    "enable",
    "enable_ledger",
    "enable_metrics",
    "enable_tracing",
    "get_ledger",
    "get_metrics",
    "get_tracer",
    "load_ledger_jsonl",
    "load_trace_jsonl",
    "percentile",
    "render_summary",
    "render_trace",
    "select_trace",
    "summarize_spans",
    "summary",
]
