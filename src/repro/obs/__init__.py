"""repro.obs -- the observability plane: traces, metrics, ledger,
flight recorder, SLOs.

Three pillars, one enablement policy (disabled by default, single
boolean check on every hot path):

- :mod:`repro.obs.trace` -- deterministic end-to-end request traces
  with explicit context propagation across thread and process
  boundaries, exported as JSONL or Chrome ``trace_event`` JSON;
- :mod:`repro.obs.metrics` -- process-wide Counter/Gauge/Histogram
  registry with mergeable fixed-bucket histograms, absorbing the
  serve/perf/cache metric stores behind one ``snapshot()``, with
  Prometheus text exposition;
- :mod:`repro.obs.ledger` -- append-only event log keyed by trace id
  (run/fault/retry/cache/admission/checkpoint events), with watcher
  hooks for crash-triggered consumers.

Layered on the pillars (no extra enablement state of their own):

- :mod:`repro.obs.recorder` -- a bounded flight-recorder ring of
  periodic metric/gauge samples, dumped automatically on shard
  death;
- :mod:`repro.obs.slo` -- declarative SLO specs evaluated as
  multi-window burn rates over recorder samples, coupled into the
  cluster's circuit breakers;
- :mod:`repro.obs.critical` -- critical-path decomposition of
  stitched request traces into admission/batch/transport/eval/route
  phases.

``enable()``/``disable()`` flip the three pillars together, which is
what the ``repro serve --trace-dir`` path and the tests use.
"""

from repro.obs.critical import (
    compare_reports,
    critical_path_report,
    request_breakdowns,
    trace_breakdown,
)
from repro.obs.ledger import (
    RunLedger,
    disable_ledger,
    enable_ledger,
    get_ledger,
    load_ledger_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    prometheus_text,
)
from repro.obs.recorder import FlightRecorder, load_flight_jsonl
from repro.obs.report import (
    render_summary,
    render_top,
    render_trace,
    select_trace,
    summarize_spans,
)
from repro.obs.slo import SLOEvaluator, SLOSpec, evaluate_slos
from repro.obs.stats import (
    bucket_fraction_above,
    bucket_percentile,
    percentile,
    summary,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    canonical_spans,
    chrome_trace,
    derive_span_id,
    derive_trace_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace_jsonl,
)


def enable() -> None:
    """Turn on all three pillars (tracing + perf span bridge, metrics,
    ledger)."""
    enable_tracing()
    enable_metrics()
    enable_ledger()


def disable() -> None:
    """Turn all three pillars off (collected data is kept; use the
    per-pillar ``reset()`` to drop it)."""
    disable_tracing()
    disable_metrics()
    disable_ledger()


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLedger",
    "SLOEvaluator",
    "SLOSpec",
    "Span",
    "TraceContext",
    "Tracer",
    "bucket_fraction_above",
    "bucket_percentile",
    "canonical_spans",
    "chrome_trace",
    "compare_reports",
    "critical_path_report",
    "derive_span_id",
    "derive_trace_id",
    "disable",
    "disable_ledger",
    "disable_metrics",
    "disable_tracing",
    "enable",
    "enable_ledger",
    "enable_metrics",
    "enable_tracing",
    "evaluate_slos",
    "get_ledger",
    "get_metrics",
    "get_tracer",
    "load_flight_jsonl",
    "load_ledger_jsonl",
    "load_trace_jsonl",
    "percentile",
    "prometheus_text",
    "render_summary",
    "render_top",
    "render_trace",
    "request_breakdowns",
    "select_trace",
    "summarize_spans",
    "summary",
    "trace_breakdown",
]
