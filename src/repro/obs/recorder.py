"""Flight recorder: a bounded ring of periodic metric/gauge samples.

Post-mortem observability for the serving plane.  Counters and
histograms tell you *what* the steady state looked like; when a shard
dies the question is *what the last few seconds looked like* -- queue
depths climbing, backlog piling onto one shard, cache hit rate
cratering.  The :class:`FlightRecorder` samples the process-wide
:class:`~repro.obs.metrics.MetricsRegistry` snapshot plus any number of
cheap gauge callables (``ShardCluster.gauges()``,
``EvaluationService.gauges()``) into a ``deque(maxlen=capacity)`` ring,
so memory stays bounded no matter how long the service runs.

Dumps are triggered two ways:

- explicitly, via :meth:`FlightRecorder.dump` (e.g. from a CLI exit
  path); or
- automatically, via :meth:`FlightRecorder.watch_ledger`, which hooks
  the run ledger's watcher chain and snapshots the ring the moment a
  ``shard.killed`` / ``shard.down`` / ``shard.restarted`` event lands
  -- *before* the supervisor's restart scrubs the evidence.

Every dump takes one fresh sample first, so the record always includes
the state at the instant of the trigger (the killed shard's last gauge
readings), then freezes the ring into an immutable list.  Dumps never
write ledger events themselves: a dump triggered by a ledger watcher
emitting more ledger events would recurse (the ledger's re-entrancy
guard would stop it, but the half-written dump would still be noise).

Samples are *cumulative* registry snapshots; consumers -- the SLO
evaluator's window math, the ``repro obs top`` report -- difference
adjacent samples to recover rates.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from repro.core.errors import ValidationError
from repro.obs.ledger import RunLedger, get_ledger
from repro.obs.metrics import MetricsRegistry, get_metrics

#: Ledger events that trigger an automatic flight dump when
#: :meth:`FlightRecorder.watch_ledger` is armed.
DEFAULT_DUMP_EVENTS = ("shard.killed", "shard.down", "shard.restarted")


class FlightRecorder:
    """Bounded ring buffer of metric samples with crash-dump hooks.

    Parameters
    ----------
    capacity:
        Ring size -- the newest *capacity* samples are retained.
    interval_s:
        Sampler-thread period for :meth:`start`.
    registry:
        Metrics registry to snapshot; defaults to the process registry.
    """

    def __init__(
        self,
        capacity: int = 256,
        interval_s: float = 0.05,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValidationError("recorder capacity must be >= 1")
        if interval_s <= 0.0:
            raise ValidationError("recorder interval_s must be > 0")
        self.capacity = int(capacity)
        self.interval_s = float(interval_s)
        self.registry = registry if registry is not None else get_metrics()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._sources: Dict[str, Callable[[], Mapping[str, float]]] = {}
        self._dumps: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._watched_ledger: Optional[RunLedger] = None
        self._watcher: Optional[Callable[[Dict[str, Any]], Any]] = None

    # ------------------------------------------------------------ sources

    def add_source(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a named gauge source; *fn* must be cheap (lock-only,
        no cross-process RPC) and is called once per sample.  A source
        that raises is skipped for that sample, never unregistered."""
        with self._lock:
            self._sources[name] = fn

    def attach_cluster(self, cluster: Any) -> None:
        """Sample a :class:`~repro.serve.cluster.ShardCluster`'s
        lock-only gauges (per-shard alive/backlog/queue depth)."""
        self.add_source("cluster", cluster.gauges)

    def attach_service(self, service: Any) -> None:
        """Sample an :class:`~repro.serve.service.EvaluationService`'s
        lock-only gauges."""
        self.add_source("service", service.gauges)

    # ------------------------------------------------------------ sampling

    def sample(self) -> Dict[str, Any]:
        """Take one sample (cumulative registry snapshot + gauge
        sources), append it to the ring, and return it."""
        snapshot = self.registry.snapshot()
        record: Dict[str, Any] = {
            "ts": time.time(),
            "counters": snapshot["counters"],
            "gauges": dict(snapshot["gauges"]),
            "histograms": snapshot["histograms"],
        }
        with self._lock:
            sources = list(self._sources.items())
        for name, fn in sources:
            try:
                values = fn()
            except Exception:
                continue
            for key, value in values.items():
                record["gauges"][f"{name}.{key}"] = float(value)
        with self._lock:
            self._ring.append(record)
        return record

    def samples(self) -> List[Dict[str, Any]]:
        """Ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ------------------------------------------------------------ sampler

    def start(self) -> "FlightRecorder":
        """Start the background sampler thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="flight-recorder", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self) -> None:
        """Stop the sampler and unhook any ledger watcher."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        self.unwatch_ledger()

    # ------------------------------------------------------------ dumps

    def dump(self, reason: str, **fields: Any) -> Dict[str, Any]:
        """Freeze the ring into a dump record.

        Takes one fresh sample first -- the dump always carries the
        state at the instant of the trigger -- then snapshots the ring.
        Emits no ledger events (see module docstring).
        """
        self.sample()
        record = {
            "reason": reason,
            "ts": time.time(),
            "fields": dict(fields),
            "samples": self.samples(),
        }
        with self._lock:
            self._dumps.append(record)
        return record

    @property
    def dumps(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._dumps)

    def watch_ledger(
        self,
        events: tuple = DEFAULT_DUMP_EVENTS,
        ledger: Optional[RunLedger] = None,
    ) -> None:
        """Dump automatically when any of *events* lands in the run
        ledger (shard crash, chaos kill, supervisor restart)."""
        self.unwatch_ledger()
        target = ledger if ledger is not None else get_ledger()
        watched = tuple(events)

        def _on_event(record: Dict[str, Any]) -> None:
            if record.get("event") in watched:
                self.dump(
                    "ledger:" + str(record.get("event")),
                    **{
                        key: value
                        for key, value in record.items()
                        if key not in ("ts", "seq")
                    },
                )

        target.add_watcher(_on_event)
        self._watched_ledger = target
        self._watcher = _on_event

    def unwatch_ledger(self) -> None:
        if self._watcher is not None and self._watched_ledger is not None:
            self._watched_ledger.remove_watcher(self._watcher)
        self._watcher = None
        self._watched_ledger = None

    # ------------------------------------------------------------ export

    def export_jsonl(self, path: str) -> int:
        """Write samples then dump records as JSON lines; returns the
        number of lines written."""
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.samples():
                handle.write(
                    json.dumps(
                        {"kind": "sample", **record}, sort_keys=True
                    )
                    + "\n"
                )
                lines += 1
            for record in self.dumps:
                handle.write(
                    json.dumps({"kind": "dump", **record}, sort_keys=True)
                    + "\n"
                )
                lines += 1
        return lines


def load_flight_jsonl(path: str) -> Dict[str, List[Dict[str, Any]]]:
    """Load a :meth:`FlightRecorder.export_jsonl` file back into
    ``{"samples": [...], "dumps": [...]}``."""
    out: Dict[str, List[Dict[str, Any]]] = {"samples": [], "dumps": []}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", "sample")
            out["dumps" if kind == "dump" else "samples"].append(record)
    return out


__all__ = [
    "DEFAULT_DUMP_EVENTS",
    "FlightRecorder",
    "load_flight_jsonl",
]
