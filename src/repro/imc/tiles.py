"""Multi-tile IMC system building block (paper Sec. IV, architecture level).

"It is essential to develop a multi-core system that can harmonize and
synchronize the analog MVM operations in each memory array, the digital
activation and error compensation, and the data movement between the
Processing Elements."

An :class:`IMCTile` wraps one analog crossbar with its digital periphery:
activation function, drift compensation, and per-operation energy/latency
accounting.  Tiles are the unit the mapper of :mod:`repro.imc.mapper`
assigns DNN layer slices to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.rng import SeedLike
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig


@dataclass(frozen=True)
class TileConfig:
    """One tile: a crossbar plus digital-peripheral timing/energy."""

    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    digital_energy_per_op_j: float = 50e-15
    mvm_latency_s: float = 100e-9
    drift_compensation: bool = True


def _identity(x: np.ndarray) -> np.ndarray:
    return x


class IMCTile:
    """A programmed crossbar tile with digital periphery.

    ``compute`` runs one MVM with all analog non-idealities, applies the
    optional digital drift compensation (a single multiplicative
    correction ``t^nu`` -- the calibration the paper's "accurate digital
    compensation of inaccuracies, such as drift" refers to) and the
    activation function, while tallying energy.
    """

    def __init__(
        self,
        config: TileConfig,
        seed: SeedLike = None,
        activation: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.config = config
        self.crossbar = AnalogCrossbar(config.crossbar, seed=seed)
        self.activation = activation or _identity
        self.digital_energy_j = 0.0
        self.mvm_count = 0

    @property
    def rows(self) -> int:
        return self.config.crossbar.rows

    @property
    def cols(self) -> int:
        return self.config.crossbar.cols

    def program(self, weights: np.ndarray) -> None:
        """Program a weight slice into the tile's crossbar."""
        self.crossbar.program_weights(weights)

    def compute(
        self,
        x: np.ndarray,
        t_seconds: float = 1.0,
        apply_activation: bool = True,
    ) -> np.ndarray:
        """One tile MVM with digital post-processing."""
        y = self.crossbar.mvm(x, t_seconds=t_seconds)
        if self.config.drift_compensation and t_seconds > 1.0:
            # Digital periphery rescales by the expected drift decay.
            y = y * t_seconds**self.config.crossbar.device.drift_nu
        self.digital_energy_j += (
            self.cols * self.config.digital_energy_per_op_j
        )
        self.mvm_count += 1
        if apply_activation:
            y = self.activation(y)
        return y

    @property
    def total_energy_j(self) -> float:
        """Analog conversion energy plus digital periphery energy."""
        return self.crossbar.ledger.total_energy_j + self.digital_energy_j

    @property
    def latency_s(self) -> float:
        """Total busy time so far."""
        return self.mvm_count * self.config.mvm_latency_s
