"""System-level multi-tile IMC accelerator (paper Sec. IV).

"It is essential to develop a multi-core system that can harmonize and
synchronize the analog MVM operations in each memory array, the digital
activation and error compensation, and the data movement between the
Processing Elements."

:class:`IMCAccelerator` is that system model: an ordered stack of mapped
layers (linear via :mod:`repro.imc.mapper`, convolutional via
:mod:`repro.imc.conv_mapper`) executed with a synchronization-aware
timing model -- within one layer all tiles fire their analog MVMs in
parallel and the layer takes one tile-MVM latency per *wavefront*
(sequential input blocks sharing bitlines must serialize); between
layers, activations move through an on-chip interconnect with a
bandwidth cost.  The report separates analog, digital and movement
contributions, the KPI decomposition the paper's architecture discussion
is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.units import GIGA
from repro.imc.conv_mapper import ConvMapping
from repro.imc.mapper import LayerMapping


@dataclass(frozen=True)
class SystemConfig:
    """System-level timing/energy parameters."""

    tile_mvm_latency_s: float = 100e-9
    digital_latency_s: float = 20e-9
    interconnect_bw_bytes_s: float = 8 * GIGA
    interconnect_energy_per_byte_j: float = 1e-12

    def __post_init__(self) -> None:
        if min(
            self.tile_mvm_latency_s,
            self.digital_latency_s,
            self.interconnect_bw_bytes_s,
        ) <= 0:
            raise ValueError("timing parameters must be positive")
        if self.interconnect_energy_per_byte_j < 0:
            raise ValueError("interconnect energy must be non-negative")


@dataclass(frozen=True)
class ExecutionReport:
    """Per-inference system accounting."""

    latency_s: float
    analog_latency_s: float
    digital_latency_s: float
    movement_latency_s: float
    movement_energy_j: float
    converter_energy_j: float
    total_tiles: int

    @property
    def total_energy_j(self) -> float:
        return self.movement_energy_j + self.converter_energy_j


MappedLayer = Union[LayerMapping, ConvMapping]


class IMCAccelerator:
    """A stack of mapped IMC layers with system-level accounting."""

    def __init__(
        self,
        layers: List[MappedLayer],
        config: SystemConfig = SystemConfig(),
        activation: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if not layers:
            raise ValueError("accelerator needs at least one layer")
        self.layers = layers
        self.config = config
        self.activation = activation or (lambda y: np.maximum(y, 0.0))

    @property
    def total_tiles(self) -> int:
        return sum(layer.num_tiles for layer in self.layers)

    def _layer_wavefronts(self, layer: MappedLayer) -> int:
        """Sequential tile-MVM waves one layer needs per input.

        Linear layers: tile *rows* share bitlines, so row blocks
        serialize (columns fire in parallel).  Conv layers: one wave per
        output pixel (weight-stationary, one MVM per pixel), times the
        linear layer's own wavefronts.
        """
        if isinstance(layer, ConvMapping):
            return max(1, layer.linear.grid_shape[0])
        return max(1, layer.grid_shape[0])

    def _layer_output_bytes(
        self, layer: MappedLayer, bytes_per_el: int = 1
    ) -> int:
        if isinstance(layer, ConvMapping):
            return layer.out_channels * bytes_per_el
        return layer.out_features * bytes_per_el

    def run(
        self, x: np.ndarray, t_seconds: float = 1.0
    ) -> (np.ndarray, ExecutionReport):
        """Execute one input through the full stack.

        Linear layers take flat vectors; conv layers take ``(C, H, W)``.
        The caller is responsible for matching shapes layer to layer
        (flatten between a conv and a linear stage happens automatically).
        """
        analog = digital = movement = 0.0
        movement_energy = 0.0
        value = np.asarray(x, dtype=np.float64)
        energy_before = sum(
            layer.total_energy_j for layer in self.layers
        )
        for index, layer in enumerate(self.layers):
            if isinstance(layer, ConvMapping):
                out = layer.compute(value, t_seconds=t_seconds)
                n_pixels = out.shape[1] * out.shape[2]
                analog += (
                    n_pixels
                    * self._layer_wavefronts(layer)
                    * self.config.tile_mvm_latency_s
                )
                out_bytes = self._layer_output_bytes(layer) * n_pixels
            else:
                if value.ndim != 1:
                    value = value.ravel()
                if value.shape[0] != layer.in_features:
                    raise ValueError(
                        f"layer {index}: expected {layer.in_features} "
                        f"inputs, got {value.shape[0]}"
                    )
                scale = float(np.abs(value).max())
                normalized = value / scale if scale > 0 else value
                out = layer.compute(normalized, t_seconds=t_seconds)
                if scale > 0:
                    out = out * scale
                analog += (
                    self._layer_wavefronts(layer)
                    * self.config.tile_mvm_latency_s
                )
                out_bytes = self._layer_output_bytes(layer)
            digital += self.config.digital_latency_s
            movement += out_bytes / self.config.interconnect_bw_bytes_s
            movement_energy += (
                out_bytes * self.config.interconnect_energy_per_byte_j
            )
            if index < len(self.layers) - 1:
                out = self.activation(out)
            value = out
        converter_energy = (
            sum(layer.total_energy_j for layer in self.layers)
            - energy_before
        )
        report = ExecutionReport(
            latency_s=analog + digital + movement,
            analog_latency_s=analog,
            digital_latency_s=digital,
            movement_latency_s=movement,
            movement_energy_j=movement_energy,
            converter_energy_j=converter_energy,
            total_tiles=self.total_tiles,
        )
        return value, report
