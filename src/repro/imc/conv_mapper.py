"""Convolution mapping onto IMC crossbars (paper Sec. IV).

The paper's architecture-level problem includes "a proper mapping of the
DNN coefficients and operations into the various tiles".  Fully-connected
layers map directly (:mod:`repro.imc.mapper`); convolutions use the
standard im2col unrolling: each kernel position's receptive field becomes
one crossbar input row, each output channel one column, and one output
pixel is produced per analog MVM.  This is the classic ISAAC-style
weight-stationary scheme the cited IMC literature assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.rng import SeedLike
from repro.imc.mapper import LayerMapping, map_linear_layer
from repro.imc.tiles import TileConfig


@dataclass
class ConvMapping:
    """A 2-D convolution layer resident on IMC tiles."""

    in_channels: int
    out_channels: int
    kernel_size: int
    padding: int
    linear: LayerMapping

    @property
    def num_tiles(self) -> int:
        return self.linear.num_tiles

    @property
    def total_energy_j(self) -> float:
        return self.linear.total_energy_j

    def compute(
        self, x: np.ndarray, t_seconds: float = 1.0
    ) -> np.ndarray:
        """Run the convolution over feature map ``x (C, H, W)``.

        Each output pixel costs one (tiled) analog MVM; activations are
        normalized into the DAC range per-patch and rescaled after.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[0] != self.in_channels:
            raise ValueError(
                f"input must be ({self.in_channels}, H, W), got {x.shape}"
            )
        k, p = self.kernel_size, self.padding
        if p:
            x = np.pad(x, ((0, 0), (p, p), (p, p)))
        _, h, w = x.shape
        out_h, out_w = h - k + 1, w - k + 1
        if out_h < 1 or out_w < 1:
            raise ValueError("kernel larger than padded input")
        windows = sliding_window_view(x, (k, k), axis=(1, 2))
        out = np.zeros((self.out_channels, out_h, out_w))
        for i in range(out_h):
            for j in range(out_w):
                patch = windows[:, i, j].ravel()
                scale = float(np.abs(patch).max())
                if scale == 0:
                    continue
                y = self.linear.compute(patch / scale, t_seconds=t_seconds)
                out[:, i, j] = y * scale
        return out


def map_conv_layer(
    weights: np.ndarray,
    tile_config: TileConfig,
    padding: int = None,
    seed: SeedLike = None,
) -> ConvMapping:
    """Map convolution *weights* ``(F, C, k, k)`` onto IMC tiles.

    The im2col weight matrix is ``(C*k*k, F)``: receptive-field elements
    on the wordlines, output channels on the bitlines.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
        raise ValueError(f"weights must be (F, C, k, k), got {weights.shape}")
    n_filters, c_in, k, _ = weights.shape
    if padding is None:
        padding = (k - 1) // 2
    if padding < 0:
        raise ValueError("padding must be non-negative")
    matrix = weights.reshape(n_filters, c_in * k * k).T
    linear = map_linear_layer(matrix, tile_config, seed=seed)
    return ConvMapping(
        in_channels=c_in,
        out_channels=n_filters,
        kernel_size=k,
        padding=padding,
        linear=linear,
    )
