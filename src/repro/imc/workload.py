"""IMC crossbar adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation programs and measures one analog crossbar cell
(the Sec. IV variability-campaign unit of work)."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.core.api import RunResult, build_run_result, register_workload
from repro.core.errors import ValidationError


class IMCCrossbarWorkload:
    """``imc-crossbar``: program a crossbar, measure MVM fidelity."""

    name = "imc-crossbar"

    def space(self) -> Dict[str, tuple]:
        return {
            "rows": (32, 48, 64, 96, 128),
            "cols": (32, 48, 64, 96, 128),
            "device": ("rram", "pcm"),
            "wire_resistance_ohm": (1.0, 0.5, 2.0, 4.0),
            "use_program_verify": (True, False),
            "num_inputs": (4, 8, 16),
            "t_seconds": (1.0, 0.1, 10.0),
        }

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.imc.sweep import CrossbarSweepSpec, evaluate_crossbar_spec

        if impl not in (None, "numpy"):
            raise ValidationError(
                f"imc-crossbar supports impl=None|'numpy', got {impl!r}"
            )
        spec = CrossbarSweepSpec(**dict(config), seed=seed)
        start = time.perf_counter()
        record = evaluate_crossbar_spec(spec)
        wall = time.perf_counter() - start
        # The record echoes the spec; keep only the measurements.
        metrics = {
            k: v
            for k, v in record.items()
            if k
            not in (
                "rows", "cols", "device", "wire_resistance_ohm",
                "use_program_verify", "seed",
            )
        }
        return build_run_result(
            self.name, metrics, config=dict(config), seed=seed, impl=impl,
            wall_time_s=wall,
        )


register_workload(IMCCrossbarWorkload())
