"""Processor-memory architecture taxonomy of Fig. 2 (paper Sec. IV).

Fig. 2 contrasts four organizations: (a) the von Neumann architecture
with off-chip weight traffic, (b) near-memory computing, (c) SRAM-based
in-memory computing and (d) eNVM-based in-memory computing.  The figure's
message is the progressive elimination of data movement: IMC "minimizes
the data movement and the associated latency and energy consumption."

:func:`mvm_cost` prices one ``m x n`` matrix-vector product under each
organization with a transparent energy/latency breakdown (weight
movement, activation movement, compute), using per-byte movement energies
from the standard technology references (45 nm-class numbers; the
*ratios* between hierarchy levels are what matters and they are stable
across nodes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.core.units import GIGA, PICO


class ArchitectureKind(enum.Enum):
    """The four organizations of Fig. 2."""

    VON_NEUMANN = "von Neumann"
    NEAR_MEMORY = "near-memory"
    IMC_SRAM = "SRAM-based IMC"
    IMC_ENVM = "eNVM-based IMC"


@dataclass(frozen=True)
class MovementCosts:
    """Per-byte movement and per-MAC compute energies (joules)."""

    dram_per_byte: float = 100e-12
    onchip_sram_per_byte: float = 10e-12
    local_buffer_per_byte: float = 1e-12
    digital_mac: float = 0.25e-12
    analog_mac: float = 0.02e-12
    adc_per_output: float = 2e-12
    dram_bandwidth_bytes_s: float = 25 * GIGA
    onchip_bandwidth_bytes_s: float = 400 * GIGA


@dataclass(frozen=True)
class MVMCost:
    """Cost breakdown of one MVM under one architecture."""

    kind: ArchitectureKind
    weight_movement_j: float
    activation_movement_j: float
    compute_j: float
    latency_s: float

    @property
    def total_energy_j(self) -> float:
        return (
            self.weight_movement_j + self.activation_movement_j + self.compute_j
        )

    @property
    def movement_fraction(self) -> float:
        """Share of energy spent moving data -- the Fig. 2 story line."""
        total = self.total_energy_j
        if total == 0:
            return 0.0
        return (self.weight_movement_j + self.activation_movement_j) / total


def mvm_cost(
    kind: ArchitectureKind,
    rows: int,
    cols: int,
    bytes_per_element: int = 1,
    costs: MovementCosts = MovementCosts(),
) -> MVMCost:
    """Energy/latency of one ``rows x cols`` MVM under *kind*.

    - von Neumann: weights stream from DRAM, activations from on-chip
      SRAM, digital MACs;
    - near-memory: weights held in on-chip SRAM next to the compute units
      (one SRAM read per weight), digital MACs;
    - SRAM-IMC: weights resident *inside* the computing SRAM macro (no
      per-MVM weight movement -- only the volatile array must have been
      loaded once, amortized away), activations via local buffers, analog
      or adder-tree MACs plus column readout;
    - eNVM-IMC: weights stored in the nonvolatile array (no loading at
      all), otherwise like SRAM-IMC.
    """
    if rows < 1 or cols < 1 or bytes_per_element < 1:
        raise ValueError("dimensions must be >= 1")
    n_weights = rows * cols
    weight_bytes = n_weights * bytes_per_element
    act_bytes = (rows + cols) * bytes_per_element
    macs = n_weights

    if kind is ArchitectureKind.VON_NEUMANN:
        weight_j = weight_bytes * costs.dram_per_byte
        act_j = act_bytes * costs.onchip_sram_per_byte
        compute_j = macs * costs.digital_mac
        latency = (
            weight_bytes / costs.dram_bandwidth_bytes_s
            + act_bytes / costs.onchip_bandwidth_bytes_s
        )
    elif kind is ArchitectureKind.NEAR_MEMORY:
        weight_j = weight_bytes * costs.onchip_sram_per_byte
        act_j = act_bytes * costs.local_buffer_per_byte
        compute_j = macs * costs.digital_mac
        latency = weight_bytes / costs.onchip_bandwidth_bytes_s
    elif kind is ArchitectureKind.IMC_SRAM:
        weight_j = 0.0
        act_j = act_bytes * costs.local_buffer_per_byte
        compute_j = macs * costs.analog_mac + cols * costs.adc_per_output
        latency = act_bytes / costs.onchip_bandwidth_bytes_s + 100e-9
    elif kind is ArchitectureKind.IMC_ENVM:
        weight_j = 0.0
        act_j = act_bytes * costs.local_buffer_per_byte
        compute_j = macs * costs.analog_mac + cols * costs.adc_per_output
        latency = act_bytes / costs.onchip_bandwidth_bytes_s + 100e-9
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown architecture {kind}")
    return MVMCost(
        kind=kind,
        weight_movement_j=weight_j,
        activation_movement_j=act_j,
        compute_j=compute_j,
        latency_s=latency,
    )


def standby_weight_energy_j(
    kind: ArchitectureKind,
    rows: int,
    cols: int,
    standby_seconds: float,
    sram_leakage_per_bit_w: float = 10e-15,
    bytes_per_element: int = 1,
) -> float:
    """Weight-retention energy over *standby_seconds*.

    The eNVM advantage Fig. 2(d) adds on top of (c): nonvolatile weights
    leak nothing, while SRAM-resident weights pay leakage continuously.
    """
    if standby_seconds < 0:
        raise ValueError("standby time must be non-negative")
    if kind in (ArchitectureKind.IMC_ENVM,):
        return 0.0
    bits = rows * cols * bytes_per_element * 8
    return bits * sram_leakage_per_bit_w * standby_seconds


def taxonomy_table(
    rows: int = 512, cols: int = 512, bytes_per_element: int = 1
) -> List[Dict[str, float]]:
    """Fig. 2 as data: one dict per architecture with the cost breakdown,
    ordered (a) to (d)."""
    table = []
    for kind in ArchitectureKind:
        cost = mvm_cost(kind, rows, cols, bytes_per_element)
        table.append(
            {
                "architecture": kind.value,
                "weight_movement_pj": cost.weight_movement_j / PICO,
                "activation_movement_pj": cost.activation_movement_j / PICO,
                "compute_pj": cost.compute_j / PICO,
                "total_pj": cost.total_energy_j / PICO,
                "movement_fraction": cost.movement_fraction,
                "latency_us": cost.latency_s * 1e6,
            }
        )
    return table
