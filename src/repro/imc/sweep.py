"""Batched IMC crossbar design sweeps (paper Sec. IV campaigns).

The IMC campaign grids sweep crossbar geometry, device technology and
peripheral non-idealities into accuracy/energy curves.  Each sweep cell
programs a crossbar (the dominant cost: iterative program-and-verify
over the full array) and measures MVM fidelity against the ideal
result, so a grid of cells is exactly the embarrassingly-parallel,
pure-function shape :mod:`repro.exec` accelerates: cells fan out over
the process pool and memoize by content digest.

Determinism: every cell derives its random streams from the *spec*
content (via :func:`repro.core.rng.make_rng` on a spec-local seed),
never from sweep position or worker identity, so serial, parallel and
cache-warmed sweeps produce identical records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import ValidationError
from repro.exec.parallel import CacheLike, EvaluatorLike
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.imc.devices import DeviceParams, PCM_PARAMS, RRAM_PARAMS

_DEVICE_PRESETS: Dict[str, DeviceParams] = {
    "rram": RRAM_PARAMS,
    "pcm": PCM_PARAMS,
}


@dataclass(frozen=True)
class CrossbarSweepSpec:
    """One cell of a crossbar campaign grid.

    *device* names a technology preset (``"rram"`` / ``"pcm"``) so the
    spec stays a compact, digest-friendly value object.  *seed* drives
    every random stream of the cell (weights, inputs, device
    variability); *num_inputs* MVMs are averaged per cell.
    """

    rows: int = 64
    cols: int = 64
    device: str = "rram"
    wire_resistance_ohm: float = 1.0
    use_program_verify: bool = True
    num_inputs: int = 8
    t_seconds: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValidationError("crossbar dimensions must be >= 1")
        if self.device not in _DEVICE_PRESETS:
            raise ValidationError(
                f"unknown device preset {self.device!r} "
                f"(choose from {sorted(_DEVICE_PRESETS)})"
            )
        if self.num_inputs < 1:
            raise ValidationError("num_inputs must be >= 1")
        if self.t_seconds <= 0:
            raise ValidationError("t_seconds must be positive")

    @property
    def device_params(self) -> DeviceParams:
        return _DEVICE_PRESETS[self.device]


def evaluate_crossbar_spec(spec: CrossbarSweepSpec) -> Dict[str, Any]:
    """Program and measure one crossbar cell -> JSON record.

    Module-level and pure so process pools can ship it and result
    caches can store it: the record is a deterministic function of the
    spec alone.
    """
    config = CrossbarConfig(
        rows=spec.rows,
        cols=spec.cols,
        device=spec.device_params,
        wire_resistance_ohm=spec.wire_resistance_ohm,
        use_program_verify=spec.use_program_verify,
    )
    crossbar = AnalogCrossbar(config, seed=spec.seed)
    data_rng = np.random.default_rng(
        np.random.SeedSequence([spec.seed, spec.rows, spec.cols])
    )
    weights = data_rng.uniform(-1.0, 1.0, size=(spec.rows, spec.cols))
    crossbar.program_weights(weights)

    squared = 0.0
    worst = 0.0
    reference_power = 0.0
    for _ in range(spec.num_inputs):
        x = data_rng.uniform(-1.0, 1.0, size=spec.rows)
        measured = crossbar.mvm(x, t_seconds=spec.t_seconds)
        ideal = weights.T @ x
        err = measured - ideal
        squared += float(np.mean(err**2))
        worst = max(worst, float(np.max(np.abs(err))))
        reference_power += float(np.mean(ideal**2))
    rms_error = float(np.sqrt(squared / spec.num_inputs))
    reference_rms = float(np.sqrt(reference_power / spec.num_inputs))
    return {
        "rows": spec.rows,
        "cols": spec.cols,
        "device": spec.device,
        "wire_resistance_ohm": spec.wire_resistance_ohm,
        "use_program_verify": spec.use_program_verify,
        "seed": spec.seed,
        "rms_error": rms_error,
        "max_error": worst,
        "relative_rms_error": (
            rms_error / reference_rms if reference_rms else 0.0
        ),
        "adc_conversions": crossbar.ledger.adc_conversions,
        "dac_conversions": crossbar.ledger.dac_conversions,
        "energy_j": crossbar.ledger.total_energy_j,
    }


def crossbar_sweep(
    specs: Sequence[CrossbarSweepSpec],
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
) -> List[Dict[str, Any]]:
    """Evaluate a grid of crossbar specs, in spec order.

    *parallel* fans the cells out over a
    :class:`~repro.exec.ParallelEvaluator`; *cache* memoizes them by
    request digest across sweeps.  Order and values are identical to a
    serial ``[evaluate_crossbar_spec(s) for s in specs]``.

    A thin wrapper: the grid is one layer of a
    :class:`~repro.campaign.CampaignGraph` (one ``imc-crossbar``
    :class:`~repro.campaign.EvalNode` per spec plus a record-rebuilding
    reduction) executed by :class:`~repro.campaign.GraphRunner`; use
    :func:`repro.campaign.crossbar_sweep_graph` directly to compose
    sweeps into larger campaigns.
    """
    from repro.campaign import GraphRunner, crossbar_sweep_graph

    graph = crossbar_sweep_graph(specs)
    runner = GraphRunner(parallel=parallel, cache=cache, observe=False)
    return runner.run(graph).value("rows")


#: The spec-identity keys every sweep record echoes (in record order).
_ROW_IDENTITY = (
    "rows", "cols", "device", "wire_resistance_ohm", "use_program_verify",
)


def sweep_row_to_run_result(row: Dict[str, Any]):
    """Lift one sweep record into the uniform
    :class:`~repro.core.api.RunResult` interchange form.

    The full record rides in ``metrics`` so
    :func:`sweep_row_from_run_result` round-trips it byte-identically;
    the spec-identity keys double as the result's ``config`` and the
    record's seed as its ``seed``.
    """
    from repro.core.api import build_run_result

    return build_run_result(
        "imc-crossbar",
        dict(row),
        config={k: row[k] for k in _ROW_IDENTITY if k in row},
        seed=int(row.get("seed", 0)),
    )


def sweep_row_from_run_result(result) -> Dict[str, Any]:
    """Inverse of :func:`sweep_row_to_run_result`: the legacy record."""
    return dict(result.metrics)


def sweep_grid(
    num_cells: int,
    rows: int = 64,
    cols: int = 64,
    devices: Tuple[str, ...] = ("rram", "pcm"),
    wire_resistances: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    num_inputs: int = 8,
    seed: int = 0,
    evaluate: bool = False,
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
):
    """A deterministic campaign grid of *num_cells* distinct specs.

    Cycles device technology and wire resistance while advancing the
    per-cell seed, the standard shape of the Sec. IV variability
    campaigns (n repetitions per corner).

    By default returns the spec list (legacy behaviour).  With
    ``evaluate=True`` -- implied when ``parallel=`` or ``cache=`` is
    given -- the grid is run through :func:`crossbar_sweep` and the
    evaluated records are returned instead, honouring the suite-wide
    ``parallel=`` / ``cache=`` contract (see :mod:`repro.core.api`)
    exactly like ``DSERunner.run`` and the hetero campaigns.
    """
    if num_cells < 1:
        raise ValidationError("num_cells must be >= 1")
    specs = []
    for i in range(num_cells):
        specs.append(
            CrossbarSweepSpec(
                rows=rows,
                cols=cols,
                device=devices[i % len(devices)],
                wire_resistance_ohm=wire_resistances[
                    (i // len(devices)) % len(wire_resistances)
                ],
                num_inputs=num_inputs,
                seed=seed + i,
            )
        )
    if evaluate or parallel is not None or cache is not None:
        return crossbar_sweep(specs, parallel=parallel, cache=cache)
    return specs


__all__ = [
    "CrossbarSweepSpec",
    "crossbar_sweep",
    "evaluate_crossbar_spec",
    "sweep_grid",
    "sweep_row_from_run_result",
    "sweep_row_to_run_result",
]
