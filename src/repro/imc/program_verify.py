"""High-precision program-and-verify algorithms (paper Sec. IV, ref [10]).

Open-loop programming leaves a log-normal spread around every conductance
target, which maps DNN coefficients imprecisely and degrades accuracy.
The project "developed high-precision program-and-verify algorithms to
counter these non-ideal device effects": program, read back, and issue
corrective pulses until every cell is within tolerance or the iteration
budget is exhausted.

:func:`program_and_verify` implements that loop over a whole
:class:`~repro.imc.devices.NVMDevice` array and reports convergence
statistics, so the accuracy benches can compare open-loop vs. verified
mapping under identical device physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.imc.devices import NVMDevice, relative_programming_error


@dataclass(frozen=True)
class ProgramVerifyResult:
    """Outcome of a program-and-verify session."""

    iterations_used: int
    converged_fraction: float
    rms_error_trace: List[float]
    final_rms_error: float
    total_pulses: int

    @property
    def converged(self) -> bool:
        """True when every cell met the tolerance."""
        return self.converged_fraction >= 1.0


def open_loop_program(device: NVMDevice, targets: np.ndarray) -> float:
    """Single-pulse programming; returns the RMS relative error.

    The baseline the paper's algorithm improves upon.
    """
    targets = device.clip_targets(np.asarray(targets, dtype=np.float64))
    achieved = device.program_pulse(targets)
    err = relative_programming_error(achieved, targets)
    return float(np.sqrt(np.mean(err**2)))


def program_and_verify(
    device: NVMDevice,
    targets: np.ndarray,
    tolerance: float = 0.02,
    max_iterations: int = 20,
) -> ProgramVerifyResult:
    """Iterative program-and-verify of *targets* onto *device*.

    Each iteration reads the achieved conductances (with read noise --
    the verify step sees the same noisy world the algorithm would on
    silicon) and applies a corrective pulse only to the cells whose
    relative error exceeds *tolerance*.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    targets = device.clip_targets(np.asarray(targets, dtype=np.float64))

    device.program_pulse(targets)
    total_pulses = int(np.prod(device.shape))
    trace: List[float] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        measured = device.read()
        err = relative_programming_error(measured, targets)
        trace.append(float(np.sqrt(np.mean(err**2))))
        out_of_spec = np.abs(err) > tolerance
        if not out_of_spec.any():
            break
        # Correct only out-of-spec cells: in-spec cells get a zero-error
        # pass-through (no pulse charged for them).  Pulse amplitude -- and
        # with it the stochastic spread -- shrinks as the loop converges,
        # the defining feature of the high-precision schemes of [10].
        correction = np.where(out_of_spec, err, 0.0)
        pulse_sigma = device.params.program_sigma / (2.0 * iterations)
        device.program_correction(correction, pulse_sigma=pulse_sigma)
        total_pulses += int(out_of_spec.sum())

    true_err = relative_programming_error(device.conductances, targets)
    final_rms = float(np.sqrt(np.mean(true_err**2)))
    converged = float(np.mean(np.abs(true_err) <= tolerance))
    return ProgramVerifyResult(
        iterations_used=iterations,
        converged_fraction=converged,
        rms_error_trace=trace,
        final_rms_error=final_rms,
        total_pulses=total_pulses,
    )


def mlc_levels(device_g_min: float, device_g_max: float, bits: int) -> np.ndarray:
    """Evenly spaced multi-level-cell conductance targets for *bits*
    bits/cell (``2**bits`` levels spanning the programmable window)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if not 0 < device_g_min < device_g_max:
        raise ValueError("need 0 < g_min < g_max")
    return np.linspace(device_g_min, device_g_max, 2**bits)


def mlc_level_error_rate(
    device: NVMDevice,
    bits: int,
    cells_per_level: int = 64,
    read_time_s: float = 1.0,
    use_verify: bool = True,
) -> float:
    """Fraction of cells read back in the wrong MLC level.

    Programs ``cells_per_level`` cells to every level, waits
    *read_time_s* (drift!), reads, and classifies each cell to the
    nearest level.  The drift-vs-precision interaction this exposes is
    the core device-level design problem of Sec. IV.
    """
    levels = mlc_levels(device.params.g_min, device.params.g_max, bits)
    if device.shape != (levels.size, cells_per_level):
        raise ValueError(
            f"device shape must be ({levels.size}, {cells_per_level})"
        )
    targets = np.repeat(levels[:, None], cells_per_level, axis=1)
    if use_verify:
        program_and_verify(device, targets, tolerance=0.02)
    else:
        device.program_pulse(targets)
    readout = device.read(t_seconds=read_time_s)
    decided = np.abs(readout[:, :, None] - levels[None, None, :]).argmin(axis=2)
    expected = np.repeat(
        np.arange(levels.size)[:, None], cells_per_level, axis=1
    )
    return float(np.mean(decided != expected))
