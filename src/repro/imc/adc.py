"""Data converter models for analog IMC (paper Sec. IV, circuit level).

"One of the key bottlenecks of NVM IMC-based accelerators is the hybrid
analog/digital computation": every analog MVM result must cross an ADC,
and the converters dominate circuit energy.  These models capture the two
knobs the paper's circuit work turns: converter resolution (accuracy vs.
energy, ADC energy grows exponentially with bits) and *analog
accumulation* [11], which amortizes one conversion over several MVMs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DACConfig:
    """Input (wordline voltage) digital-to-analog converter."""

    bits: int = 8
    v_max: float = 0.3

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("DAC bits must be >= 1")
        if self.v_max <= 0:
            raise ValueError("v_max must be positive")

    @property
    def levels(self) -> int:
        return 2**self.bits

    def quantize(self, normalized: np.ndarray) -> np.ndarray:
        """Map inputs in [-1, 1] to quantized voltages in
        [-v_max, v_max]."""
        normalized = np.clip(np.asarray(normalized, dtype=np.float64), -1, 1)
        step = 2.0 / (self.levels - 1)
        codes = np.rint((normalized + 1.0) / step)
        return (codes * step - 1.0) * self.v_max

    @property
    def energy_per_conversion_j(self) -> float:
        """~50 fJ per level-setting at 8 bits, linear in resolution."""
        return 50e-15 * self.bits / 8.0


@dataclass(frozen=True)
class ADCConfig:
    """Column (bitline current) analog-to-digital converter."""

    bits: int = 8
    i_max: float = 2.5e-4

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("ADC bits must be >= 1")
        if self.i_max <= 0:
            raise ValueError("i_max must be positive")

    @property
    def levels(self) -> int:
        return 2**self.bits

    def quantize(self, currents: np.ndarray) -> np.ndarray:
        """Quantize bipolar currents in [-i_max, i_max], saturating."""
        currents = np.clip(
            np.asarray(currents, dtype=np.float64), -self.i_max, self.i_max
        )
        step = 2.0 * self.i_max / (self.levels - 1)
        return np.rint((currents + self.i_max) / step) * step - self.i_max

    @property
    def energy_per_conversion_j(self) -> float:
        """SAR-ADC energy: ~2 fJ per conversion-step, doubling per bit.

        The exponential term is what makes minimizing conversions (analog
        accumulation, [11]) worth architecture-level effort.
        """
        return 2e-15 * 2.0**self.bits

    def lsb_current(self) -> float:
        """Current per ADC code step."""
        return 2.0 * self.i_max / (self.levels - 1)


@dataclass
class ConversionLedger:
    """Counts conversions and their energy across a workload run."""

    adc_conversions: int = 0
    dac_conversions: int = 0
    adc_energy_j: float = 0.0
    dac_energy_j: float = 0.0

    def charge_adc(self, config: ADCConfig, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.adc_conversions += count
        self.adc_energy_j += count * config.energy_per_conversion_j

    def charge_dac(self, config: DACConfig, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.dac_conversions += count
        self.dac_energy_j += count * config.energy_per_conversion_j

    @property
    def total_energy_j(self) -> float:
        return self.adc_energy_j + self.dac_energy_j

    def merge(self, other: "ConversionLedger") -> None:
        self.adc_conversions += other.adc_conversions
        self.dac_conversions += other.dac_conversions
        self.adc_energy_j += other.adc_energy_j
        self.dac_energy_j += other.dac_energy_j
