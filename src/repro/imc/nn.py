"""End-to-end DNN inference on the IMC stack (paper Sec. IV).

The architecture-level KPI the paper cares about is DNN accuracy under
analog non-idealities.  This module provides the minimal complete loop:
a numpy MLP classifier, a synthetic Gaussian-blob dataset, float training,
and an :class:`IMCInferenceEngine` that runs the trained network through
mapped crossbar tiles -- so the benches can sweep drift time, variability
and program-verify on a real accuracy metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.metrics import classification_accuracy
from repro.core.rng import SeedLike, make_rng
from repro.imc.mapper import LayerMapping, map_linear_layer
from repro.imc.tiles import TileConfig


def make_blobs(
    n_samples: int = 300,
    n_features: int = 16,
    n_classes: int = 4,
    spread: float = 0.6,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-blob classification dataset, features scaled to [-1, 1].

    Synthetic stand-in for the DNN workloads of Sec. IV (the accuracy
    *degradation* under device non-idealities is what the experiments
    measure, and it transfers across datasets).
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    rng = make_rng(seed)
    centers = rng.uniform(-1, 1, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    x = centers[labels] + rng.normal(0, spread / np.sqrt(n_features),
                                     size=(n_samples, n_features))
    x = np.clip(x, -1, 1)
    return x, labels


@dataclass
class MLP:
    """Two-layer perceptron with ReLU hidden activation."""

    w1: np.ndarray  # (in, hidden)
    b1: np.ndarray
    w2: np.ndarray  # (hidden, classes)
    b2: np.ndarray

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch ``(n, in)`` or single sample ``(in,)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        hidden = np.maximum(x @ self.w1 + self.b1, 0.0)
        return hidden @ self.w2 + self.b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)


def train_mlp(
    x: np.ndarray,
    labels: np.ndarray,
    hidden: int = 32,
    epochs: int = 200,
    lr: float = 0.1,
    seed: SeedLike = 0,
) -> MLP:
    """Full-batch softmax-cross-entropy training of an MLP."""
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2 or x.shape[0] != labels.shape[0]:
        raise ValueError("x must be (n, features) aligned with labels")
    n, features = x.shape
    classes = int(labels.max()) + 1
    rng = make_rng(seed)
    model = MLP(
        w1=rng.normal(0, np.sqrt(2.0 / features), (features, hidden)),
        b1=np.zeros(hidden),
        w2=rng.normal(0, np.sqrt(2.0 / hidden), (hidden, classes)),
        b2=np.zeros(classes),
    )
    onehot = np.eye(classes)[labels]
    for _ in range(epochs):
        pre_hidden = x @ model.w1 + model.b1
        hidden_act = np.maximum(pre_hidden, 0.0)
        logits = hidden_act @ model.w2 + model.b2
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        d_logits = (probs - onehot) / n
        d_w2 = hidden_act.T @ d_logits
        d_b2 = d_logits.sum(axis=0)
        d_hidden = (d_logits @ model.w2.T) * (pre_hidden > 0)
        d_w1 = x.T @ d_hidden
        d_b1 = d_hidden.sum(axis=0)
        model.w1 -= lr * d_w1
        model.b1 -= lr * d_b1
        model.w2 -= lr * d_w2
        model.b2 -= lr * d_b2
    return model


class IMCInferenceEngine:
    """The trained MLP executed on mapped analog IMC tiles.

    Biases and activation functions run in the digital periphery (exact);
    both matrix products run through the analog crossbar chain.
    """

    def __init__(
        self,
        model: MLP,
        tile_config: TileConfig,
        seed: SeedLike = 0,
    ) -> None:
        rng = make_rng(seed)
        self.model = model
        self.layer1: LayerMapping = map_linear_layer(
            model.w1, tile_config, seed=rng
        )
        self.layer2: LayerMapping = map_linear_layer(
            model.w2, tile_config, seed=rng
        )

    def predict(
        self, x: np.ndarray, t_seconds: float = 1.0
    ) -> np.ndarray:
        """Class predictions for a batch through the analog stack."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        outputs = []
        for sample in x:
            hidden = np.maximum(
                self.layer1.compute(sample, t_seconds=t_seconds)
                + self.model.b1,
                0.0,
            )
            # Hidden activations are re-normalized into the DAC range.
            scale = np.abs(hidden).max()
            if scale > 0:
                hidden_in = hidden / scale
            else:
                hidden_in = hidden
            logits = (
                self.layer2.compute(hidden_in, t_seconds=t_seconds) * scale
                + self.model.b2
            )
            outputs.append(int(np.argmax(logits)))
        return np.array(outputs)

    def accuracy(
        self, x: np.ndarray, labels: np.ndarray, t_seconds: float = 1.0
    ) -> float:
        return classification_accuracy(
            np.asarray(labels), self.predict(x, t_seconds=t_seconds)
        )

    @property
    def total_energy_j(self) -> float:
        return self.layer1.total_energy_j + self.layer2.total_energy_j

    @property
    def num_tiles(self) -> int:
        return self.layer1.num_tiles + self.layer2.num_tiles
