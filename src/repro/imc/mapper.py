"""DNN-to-tile compiler (paper Sec. IV, architecture level).

"A software compiler is essential to map the DNN layers and weights to
the multiple cores to maximize the KPIs."  This module implements that
mapping for linear (fully-connected) layers: a weight matrix larger than
one crossbar is partitioned into a grid of tile-sized slices; input
slices are broadcast along tile rows, and partial outputs from tile
columns are summed digitally.

The resulting :class:`LayerMapping` is a drop-in MVM: it hides the
physical tiling and exposes the layer-level ``compute``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.rng import SeedLike, make_rng, spawn
from repro.imc.tiles import IMCTile, TileConfig


@dataclass
class LayerMapping:
    """A linear layer mapped onto a grid of IMC tiles.

    ``tiles[i][j]`` holds the weight slice of input block *i*, output
    block *j*.  Slices at the edge are zero-padded to the tile geometry;
    the padding rows/cols carry zero weights and do not disturb the sums.
    """

    in_features: int
    out_features: int
    tile_rows: int
    tile_cols: int
    tiles: List[List[IMCTile]]

    @property
    def grid_shape(self) -> tuple:
        return len(self.tiles), len(self.tiles[0])

    @property
    def num_tiles(self) -> int:
        rows, cols = self.grid_shape
        return rows * cols

    def compute(self, x: np.ndarray, t_seconds: float = 1.0) -> np.ndarray:
        """Layer MVM ``y = W^T x`` across the tile grid."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.in_features,):
            raise ValueError(f"input must be ({self.in_features},)")
        y = np.zeros(self.out_features)
        n_row_blocks, n_col_blocks = self.grid_shape
        for i in range(n_row_blocks):
            x_slice = x[i * self.tile_rows : (i + 1) * self.tile_rows]
            padded = np.zeros(self.tile_rows)
            padded[: x_slice.size] = x_slice
            for j in range(n_col_blocks):
                partial = self.tiles[i][j].compute(
                    padded, t_seconds=t_seconds, apply_activation=False
                )
                lo = j * self.tile_cols
                hi = min(lo + self.tile_cols, self.out_features)
                y[lo:hi] += partial[: hi - lo]
        return y

    @property
    def total_energy_j(self) -> float:
        return sum(t.total_energy_j for row in self.tiles for t in row)

    @property
    def utilization(self) -> float:
        """Fraction of programmed crossbar cells holding real weights."""
        capacity = self.num_tiles * self.tile_rows * self.tile_cols
        return self.in_features * self.out_features / capacity


def map_linear_layer(
    weights: np.ndarray,
    tile_config: TileConfig,
    seed: SeedLike = None,
) -> LayerMapping:
    """Partition *weights* ``(in_features, out_features)`` onto tiles.

    Raises if the matrix is empty; any size otherwise maps, with edge
    slices zero-padded.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.size == 0:
        raise ValueError("weights must be a non-empty 2-D matrix")
    in_features, out_features = weights.shape
    rows = tile_config.crossbar.rows
    cols = tile_config.crossbar.cols
    n_row_blocks = int(np.ceil(in_features / rows))
    n_col_blocks = int(np.ceil(out_features / cols))
    rng = make_rng(seed)
    child_rngs = iter(spawn(rng, n_row_blocks * n_col_blocks))

    tiles: List[List[IMCTile]] = []
    for i in range(n_row_blocks):
        tile_row: List[IMCTile] = []
        for j in range(n_col_blocks):
            block = np.zeros((rows, cols))
            r0, c0 = i * rows, j * cols
            r1 = min(r0 + rows, in_features)
            c1 = min(c0 + cols, out_features)
            block[: r1 - r0, : c1 - c0] = weights[r0:r1, c0:c1]
            tile = IMCTile(tile_config, seed=next(child_rngs))
            tile.program(block)
            tile_row.append(tile)
        tiles.append(tile_row)
    return LayerMapping(
        in_features=in_features,
        out_features=out_features,
        tile_rows=rows,
        tile_cols=cols,
        tiles=tiles,
    )
