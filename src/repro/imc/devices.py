"""Emerging non-volatile memory device models (paper Sec. IV, device level).

Both PCM and RRAM devices "are characterized by non-ideal behavior in
terms of variability, drift, and noise issues which severely limit the
device performance."  This module captures the three non-idealities with
the functional forms standard in the device literature the paper cites
([7], [9], [10]):

- **programming variability**: a single SET/RESET pulse reaches the target
  conductance only up to a log-normal multiplicative error;
- **conductance drift** (dominant in PCM): ``G(t) = G(t0) * (t/t0)^-nu``
  with drift exponent ``nu``;
- **read noise**: zero-mean Gaussian current noise proportional to the
  programmed conductance (1/f + shot aggregate).

Conductances are expressed in siemens; typical RRAM/PCM windows are a few
microsiemens to ~100 uS.  Multi-level-cell (MLC) operation tunes the
device anywhere inside ``[g_min, g_max]`` -- the property that enables
analog matrix-vector multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.rng import SeedLike, make_rng


@dataclass(frozen=True)
class DeviceParams:
    """Physical parameter set of an NVM technology."""

    name: str
    g_min: float
    g_max: float
    program_sigma: float
    drift_nu: float
    read_noise_fraction: float
    cell_area_f2: float = 25.0

    def __post_init__(self) -> None:
        if not 0 < self.g_min < self.g_max:
            raise ValueError("need 0 < g_min < g_max")
        if self.program_sigma < 0 or self.read_noise_fraction < 0:
            raise ValueError("noise parameters must be non-negative")
        if self.drift_nu < 0:
            raise ValueError("drift exponent must be non-negative")

    @property
    def dynamic_range(self) -> float:
        """On/off conductance ratio."""
        return self.g_max / self.g_min


#: Typical HfO2 RRAM: moderate variability, negligible drift.
RRAM_PARAMS = DeviceParams(
    name="RRAM",
    g_min=1e-6,
    g_max=100e-6,
    program_sigma=0.08,
    drift_nu=0.005,
    read_noise_fraction=0.01,
)

#: Typical GST PCM: similar window, pronounced resistance drift.
PCM_PARAMS = DeviceParams(
    name="PCM",
    g_min=0.5e-6,
    g_max=50e-6,
    program_sigma=0.10,
    drift_nu=0.05,
    read_noise_fraction=0.015,
)


class NVMDevice:
    """A vectorized array of NVM cells sharing one parameter set.

    The class models *state*, not layout: it holds the programmed
    conductances of ``shape`` cells and exposes program / drift / read
    operations.  Crossbar geometry lives in :mod:`repro.imc.crossbar`.
    """

    def __init__(
        self,
        params: DeviceParams,
        shape: tuple,
        seed: SeedLike = None,
    ) -> None:
        self.params = params
        self._rng = make_rng(seed)
        self._g0 = np.full(shape, params.g_min, dtype=np.float64)
        self._t_program = np.ones(shape, dtype=np.float64)
        self._stuck_mask: Optional[np.ndarray] = None
        self._stuck_values: Optional[np.ndarray] = None

    @property
    def shape(self) -> tuple:
        return self._g0.shape

    @property
    def rng(self) -> np.random.Generator:
        """The device's generator (shared across devices when seeded with
        one :class:`~numpy.random.Generator`, e.g. a crossbar's G+/G-
        pair).  Exposed so batched kernels can draw the read noise of
        several reads in one call while consuming the *same* stream as
        repeated :meth:`read` calls."""
        return self._rng

    @property
    def conductances(self) -> np.ndarray:
        """Programmed (time-zero) conductances; copy, callers cannot
        corrupt device state."""
        return self._g0.copy()

    def clip_targets(self, targets: np.ndarray) -> np.ndarray:
        """Clamp *targets* into the programmable window."""
        return np.clip(targets, self.params.g_min, self.params.g_max)

    @property
    def stuck_cell_count(self) -> int:
        """Number of cells pinned by injected stuck-at faults."""
        if self._stuck_mask is None:
            return 0
        return int(self._stuck_mask.sum())

    def apply_stuck_faults(
        self, mask: np.ndarray, values: np.ndarray
    ) -> None:
        """Pin the cells selected by *mask* at *values* (stuck-at faults).

        Stuck cells hold their conductance through every subsequent
        program/correction pulse -- the defining property of a stuck-at
        defect and what makes it survive program-and-verify.  Injected
        by :class:`repro.resilience.FaultInjector`; calling again merges
        with any previously injected faults.
        """
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), self.shape)
        values = self.clip_targets(
            np.broadcast_to(np.asarray(values, dtype=np.float64), self.shape)
        )
        if self._stuck_mask is None:
            self._stuck_mask = mask.copy()
            self._stuck_values = np.where(mask, values, 0.0)
        else:
            fresh = mask & ~self._stuck_mask
            self._stuck_mask = self._stuck_mask | mask
            self._stuck_values = np.where(
                fresh, values, self._stuck_values
            )
        self._enforce_stuck()

    def _enforce_stuck(self) -> None:
        if self._stuck_mask is not None:
            self._g0 = np.where(self._stuck_mask, self._stuck_values, self._g0)

    def program_pulse(self, targets: np.ndarray) -> np.ndarray:
        """Apply one open-loop programming pulse toward *targets*.

        Each cell lands at ``target * lognormal(0, sigma)``, clipped to the
        window; returns the achieved conductances.  This is the primitive
        the program-and-verify loop of [10] iterates.
        """
        targets = np.broadcast_to(
            np.asarray(targets, dtype=np.float64), self.shape
        )
        if np.any(targets < 0):
            raise ValueError("conductance targets must be non-negative")
        noise = self._rng.lognormal(
            mean=0.0, sigma=self.params.program_sigma, size=self.shape
        )
        self._g0 = self.clip_targets(targets * noise)
        self._t_program = np.ones(self.shape)
        self._enforce_stuck()
        return self._g0.copy()

    def program_correction(
        self, error_fraction: np.ndarray, pulse_sigma: Optional[float] = None
    ) -> np.ndarray:
        """Apply a corrective pulse scaling each conductance by
        ``1 - error_fraction`` (plus fresh pulse noise).

        Used by program-and-verify: after reading an achieved conductance
        ``g`` against target ``g*``, the next pulse corrects by the
        measured relative error.  *pulse_sigma* overrides the pulse noise
        -- verify algorithms shrink the pulse amplitude (and with it the
        stochastic spread) as they converge.
        """
        error_fraction = np.broadcast_to(
            np.asarray(error_fraction, dtype=np.float64), self.shape
        )
        if pulse_sigma is None:
            pulse_sigma = self.params.program_sigma / 2.0
        if pulse_sigma < 0:
            raise ValueError("pulse_sigma must be non-negative")
        noise = self._rng.lognormal(
            mean=0.0, sigma=pulse_sigma, size=self.shape
        )
        self._g0 = self.clip_targets(self._g0 * (1.0 - error_fraction) * noise)
        self._enforce_stuck()
        return self._g0.copy()

    def drifted(self, t_seconds: float) -> np.ndarray:
        """Conductances after *t_seconds* of drift (no state change).

        Power-law drift relative to the 1 s programming reference:
        ``G(t) = G0 * t^-nu`` for ``t >= 1``.
        """
        if t_seconds < 1.0:
            raise ValueError("drift model is defined for t >= 1 s")
        return self._g0 * t_seconds ** (-self.params.drift_nu)

    def read(self, t_seconds: float = 1.0) -> np.ndarray:
        """Noisy read of the (drifted) conductances."""
        g = self.drifted(t_seconds)
        noise = self._rng.normal(
            0.0, self.params.read_noise_fraction, size=self.shape
        )
        return np.clip(g * (1.0 + noise), 0.0, None)

def relative_programming_error(
    achieved: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Per-cell relative error ``(achieved - target) / target``."""
    targets = np.asarray(targets, dtype=np.float64)
    if np.any(targets <= 0):
        raise ValueError("targets must be positive for relative error")
    return (np.asarray(achieved, dtype=np.float64) - targets) / targets
