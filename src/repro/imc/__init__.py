"""In-memory computing architectures (paper Sec. IV).

The ICSC Flagship 2 project develops RRAM- and PCM-based IMC accelerators
addressing challenges at three levels, all modeled here:

- **device** (:mod:`repro.imc.devices`, :mod:`repro.imc.program_verify`):
  conductance programming variability, read noise and drift of RRAM/PCM
  cells, countered by high-precision program-and-verify algorithms [10];
- **circuit** (:mod:`repro.imc.crossbar`, :mod:`repro.imc.adc`,
  :mod:`repro.imc.dimc`): analog matrix-vector multiplication exploiting
  Ohm's law and Kirchhoff's current law in crossbar arrays, DAC/ADC
  interfaces, analog accumulation to minimize A/D conversions [11], and
  the SRAM-based digital IMC alternative [2];
- **architecture** (:mod:`repro.imc.tiles`, :mod:`repro.imc.mapper`,
  :mod:`repro.imc.nn`): multi-tile systems with a DNN-to-tile compiler and
  end-to-end accuracy/energy evaluation.

:mod:`repro.imc.taxonomy` models the four processor-memory organizations
of Fig. 2 (von Neumann, near-memory, SRAM-IMC, eNVM-IMC) in terms of data
movement energy and latency.
"""

from repro.imc.devices import DeviceParams, NVMDevice, RRAM_PARAMS, PCM_PARAMS
from repro.imc.program_verify import ProgramVerifyResult, program_and_verify
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.imc.adc import ADCConfig, DACConfig
from repro.imc.dimc import DigitalIMCMacro
from repro.imc.tiles import IMCTile, TileConfig
from repro.imc.mapper import LayerMapping, map_linear_layer
from repro.imc.conv_mapper import ConvMapping, map_conv_layer
from repro.imc.architecture import IMCAccelerator, SystemConfig
from repro.imc.sweep import (
    sweep_row_from_run_result,
    sweep_row_to_run_result,
    CrossbarSweepSpec,
    crossbar_sweep,
    evaluate_crossbar_spec,
    sweep_grid,
)
from repro.imc.taxonomy import ArchitectureKind, mvm_cost, taxonomy_table

__all__ = [
    "DeviceParams",
    "NVMDevice",
    "RRAM_PARAMS",
    "PCM_PARAMS",
    "ProgramVerifyResult",
    "program_and_verify",
    "AnalogCrossbar",
    "CrossbarConfig",
    "ADCConfig",
    "DACConfig",
    "DigitalIMCMacro",
    "IMCTile",
    "TileConfig",
    "LayerMapping",
    "map_linear_layer",
    "ConvMapping",
    "map_conv_layer",
    "IMCAccelerator",
    "SystemConfig",
    "ArchitectureKind",
    "CrossbarSweepSpec",
    "crossbar_sweep",
    "evaluate_crossbar_spec",
    "mvm_cost",
    "sweep_grid",
    "sweep_row_from_run_result",
    "sweep_row_to_run_result",
    "taxonomy_table",
]
