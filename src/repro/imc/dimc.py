"""SRAM-based digital in-memory computing macro (paper Sec. IV, refs [2], [8]).

"DIMC relieves all the burdens described so far but introduces new
challenges such as the design of fast adder trees and multipliers and the
design of energy-efficient peripheral circuitry."

The :class:`DigitalIMCMacro` computes bit-serial integer MVMs exactly: the
weight matrix is stored as bit-planes inside the macro, input activations
are streamed one bit per cycle, each bit-plane AND-combination is reduced
by a column adder tree, and the shifted partial sums reconstruct the full
product.  Being digital, the result is *exact* -- the trade against the
analog crossbar is energy and density, which the cost model quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DIMCCostModel:
    """Energy/latency constants of the digital macro (18 nm-class FD-SOI,
    anchored to the 40-310 TOPS/W range reported in [8])."""

    energy_per_bit_mac_j: float = 2.5e-15
    adder_tree_energy_per_level_j: float = 0.4e-15
    cycle_time_s: float = 1.0e-9

    def mvm_energy_j(self, rows: int, cols: int, w_bits: int, x_bits: int) -> float:
        """Energy of one ``rows x cols`` MVM at the given precisions."""
        if min(rows, cols, w_bits, x_bits) < 1:
            raise ValueError("all dimensions must be >= 1")
        bit_macs = rows * cols * w_bits * x_bits
        tree_levels = int(np.ceil(np.log2(max(rows, 2))))
        tree_ops = cols * w_bits * x_bits * tree_levels
        return (
            bit_macs * self.energy_per_bit_mac_j
            + tree_ops * self.adder_tree_energy_per_level_j
        )

    def mvm_latency_s(self, w_bits: int, x_bits: int) -> float:
        """Bit-serial latency: one cycle per (input-bit, weight-bit-plane)
        combination, adder tree fully pipelined."""
        if w_bits < 1 or x_bits < 1:
            raise ValueError("precisions must be >= 1")
        return w_bits * x_bits * self.cycle_time_s


class DigitalIMCMacro:
    """An exact bit-serial signed-integer MVM macro.

    Weights are signed integers of ``w_bits`` (two's complement); inputs
    are signed integers of ``x_bits``.  ``mvm`` reproduces ``W^T x``
    exactly; the value of the class is that it *computes through the
    bit-serial dataflow* (bit-planes + adder tree + shift-accumulate), so
    the tests can verify the hardware algorithm, not just numpy matmul.
    """

    def __init__(
        self,
        weights: np.ndarray,
        w_bits: int = 8,
        x_bits: int = 8,
        cost_model: DIMCCostModel = DIMCCostModel(),
    ) -> None:
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ValueError("weights must be a 2-D integer matrix")
        if not np.issubdtype(weights.dtype, np.integer):
            raise ValueError("DIMC stores integer weights; quantize first")
        limit = 2 ** (w_bits - 1)
        if np.any(weights < -limit) or np.any(weights >= limit):
            raise ValueError(f"weights exceed {w_bits}-bit signed range")
        self.w_bits = w_bits
        self.x_bits = x_bits
        self.cost_model = cost_model
        self._weights = weights.astype(np.int64)
        # Two's-complement bit-planes: plane b holds bit b of the offset
        # representation; the sign plane carries weight -2^(w_bits-1).
        offset = self._weights + limit
        self._planes = [
            ((offset >> b) & 1).astype(np.int64) for b in range(w_bits)
        ]
        self._offset = limit

    @property
    def shape(self) -> tuple:
        return self._weights.shape

    def mvm(self, x: np.ndarray) -> np.ndarray:
        """Exact ``W^T x`` through the bit-serial dataflow."""
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise ValueError("DIMC takes integer activations")
        if x.shape != (self._weights.shape[0],):
            raise ValueError(
                f"input must be ({self._weights.shape[0]},), got {x.shape}"
            )
        limit = 2 ** (self.x_bits - 1)
        if np.any(x < -limit) or np.any(x >= limit):
            raise ValueError(f"activations exceed {self.x_bits}-bit range")
        x = x.astype(np.int64)
        x_offset = x + limit

        acc = np.zeros(self._weights.shape[1], dtype=np.int64)
        for xb in range(self.x_bits):
            x_bit = (x_offset >> xb) & 1
            for wb, plane in enumerate(self._planes):
                # Column adder tree: popcount of AND(x_bit, plane) per col.
                partial = x_bit @ plane
                acc += partial << (xb + wb)
        # Remove the two offsets: (W + oW)^T (x + ox) expansion.
        sum_w = self._weights.sum(axis=0)
        sum_x = int(x.sum())
        n = self._weights.shape[0]
        ox, ow = limit, self._offset
        acc -= ow * (sum_x + n * ox)
        acc -= ox * sum_w
        acc -= 0  # (kept for symmetry with the derivation)
        return acc

    def mvm_energy_j(self) -> float:
        rows, cols = self.shape
        return self.cost_model.mvm_energy_j(rows, cols, self.w_bits, self.x_bits)

    def mvm_latency_s(self) -> float:
        return self.cost_model.mvm_latency_s(self.w_bits, self.x_bits)
