"""Variability-aware training (paper Sec. IV, architecture level).

Program-and-verify attacks device non-idealities at write time; the
complementary algorithmic mitigation is *noise-aware training*: injecting
multiplicative weight noise during training so the learned solution sits
in a flat minimum that tolerates the conductance spread the crossbar will
impose at inference.  This is the standard technique of the analog-IMC
literature the paper builds on (e.g. the compensation discussion of [7],
[9]); here it trains the same MLP as :mod:`repro.imc.nn` and the tests
show the robustness gain under strong device variability.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedLike, make_rng
from repro.imc.nn import MLP


def train_mlp_noise_aware(
    x: np.ndarray,
    labels: np.ndarray,
    hidden: int = 32,
    epochs: int = 200,
    lr: float = 0.1,
    weight_noise_sigma: float = 0.1,
    seed: SeedLike = 0,
) -> MLP:
    """Train an MLP with per-step multiplicative weight noise.

    Each forward/backward pass perturbs the weights by a log-normal-like
    factor ``(1 + N(0, sigma))`` -- the same functional form as the
    programming variability of :mod:`repro.imc.devices` -- while the
    clean weights accumulate the gradient updates (the straight-through
    scheme used in practice).
    """
    if weight_noise_sigma < 0:
        raise ValueError("weight_noise_sigma must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2 or x.shape[0] != labels.shape[0]:
        raise ValueError("x must be (n, features) aligned with labels")
    n, features = x.shape
    classes = int(labels.max()) + 1
    rng = make_rng(seed)
    model = MLP(
        w1=rng.normal(0, np.sqrt(2.0 / features), (features, hidden)),
        b1=np.zeros(hidden),
        w2=rng.normal(0, np.sqrt(2.0 / hidden), (hidden, classes)),
        b2=np.zeros(classes),
    )
    onehot = np.eye(classes)[labels]
    for _ in range(epochs):
        noise1 = 1.0 + rng.normal(0, weight_noise_sigma, model.w1.shape)
        noise2 = 1.0 + rng.normal(0, weight_noise_sigma, model.w2.shape)
        w1_noisy = model.w1 * noise1
        w2_noisy = model.w2 * noise2
        pre_hidden = x @ w1_noisy + model.b1
        hidden_act = np.maximum(pre_hidden, 0.0)
        logits = hidden_act @ w2_noisy + model.b2
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        d_logits = (probs - onehot) / n
        # Straight-through: gradients w.r.t. the noisy weights update the
        # clean weights.
        d_w2 = hidden_act.T @ d_logits
        d_b2 = d_logits.sum(axis=0)
        d_hidden = (d_logits @ w2_noisy.T) * (pre_hidden > 0)
        d_w1 = x.T @ d_hidden
        d_b1 = d_hidden.sum(axis=0)
        model.w1 -= lr * d_w1
        model.b1 -= lr * d_b1
        model.w2 -= lr * d_w2
        model.b2 -= lr * d_b2
    return model


def accuracy_under_weight_noise(
    model: MLP,
    x: np.ndarray,
    labels: np.ndarray,
    noise_sigma: float,
    trials: int = 10,
    seed: SeedLike = 0,
) -> float:
    """Mean accuracy of *model* under random multiplicative weight noise.

    A fast Monte-Carlo proxy for full crossbar simulation: it isolates
    the variability axis (no ADC/IR effects), which is the one
    noise-aware training addresses.
    """
    if noise_sigma < 0:
        raise ValueError("noise_sigma must be non-negative")
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = make_rng(seed)
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    accuracies = []
    for _ in range(trials):
        noisy = MLP(
            w1=model.w1 * (1.0 + rng.normal(0, noise_sigma,
                                            model.w1.shape)),
            b1=model.b1,
            w2=model.w2 * (1.0 + rng.normal(0, noise_sigma,
                                            model.w2.shape)),
            b2=model.b2,
        )
        accuracies.append(float(np.mean(noisy.predict(x) == labels)))
    return float(np.mean(accuracies))
