"""Analog crossbar matrix-vector multiplication (paper Sec. IV).

"Multilevel cell operation ... enables efficient matrix-vector
multiplication when RRAM and PCM are arranged in crossbar array structures
by leveraging physical laws such as Ohm's law for voltage-conductance
multiplication and Kirchhoff's current law for summation of memory
currents in the same bitline."

The :class:`AnalogCrossbar` maps a signed weight matrix onto a
*differential pair* of NVM arrays (``W ~ G+ - G-``), drives quantized DAC
voltages on the wordlines, sums bitline currents (KCL), attenuates them
with a first-order IR-drop model, digitizes through the column ADCs and
rescales back to the weight domain.  Every analog non-ideality is
individually switchable so the benches can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import StateError
from repro.core.rng import SeedLike, make_rng
from repro.imc.adc import ADCConfig, ConversionLedger, DACConfig
from repro.imc.devices import DeviceParams, NVMDevice, RRAM_PARAMS
from repro.imc.program_verify import program_and_verify
from repro.perf import profiled


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry and peripheral configuration of one crossbar macro."""

    rows: int = 128
    cols: int = 128
    device: DeviceParams = RRAM_PARAMS
    dac: DACConfig = field(default_factory=DACConfig)
    adc: ADCConfig = field(default_factory=ADCConfig)
    wire_resistance_ohm: float = 1.0
    use_program_verify: bool = True
    accumulation_depth: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("crossbar dimensions must be >= 1")
        if self.wire_resistance_ohm < 0:
            raise ValueError("wire resistance must be non-negative")
        if self.accumulation_depth < 1:
            raise ValueError("accumulation depth must be >= 1")


class AnalogCrossbar:
    """One programmed crossbar computing ``y = W^T x`` in the analog domain.

    Weights are ``(rows, cols)``: inputs drive the rows (wordlines),
    outputs are read from the columns (bitlines), matching the physical
    picture of one MVM per read cycle.
    """

    def __init__(
        self, config: CrossbarConfig, seed: SeedLike = None
    ) -> None:
        self.config = config
        rng = make_rng(seed)
        shape = (config.rows, config.cols)
        self._g_pos = NVMDevice(config.device, shape, seed=rng)
        self._g_neg = NVMDevice(config.device, shape, seed=rng)
        self._weight_scale: Optional[float] = None
        self.ledger = ConversionLedger()

    @property
    def weight_scale(self) -> Optional[float]:
        """Weight value represented by the full conductance window."""
        return self._weight_scale

    def program_weights(self, weights: np.ndarray) -> None:
        """Map signed *weights* onto the differential conductance pair.

        Positive weights program ``G+`` proportionally (``G-`` at
        ``g_min``), negative weights the converse.  The mapping scale is
        ``max |W|`` -> ``g_max - g_min``.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.config.rows, self.config.cols):
            raise ValueError(
                f"weights must be {(self.config.rows, self.config.cols)}, "
                f"got {weights.shape}"
            )
        scale = float(np.max(np.abs(weights)))
        if scale == 0:
            scale = 1.0
        self._weight_scale = scale
        params = self.config.device
        window = params.g_max - params.g_min
        g_pos = params.g_min + window * np.clip(weights, 0, None) / scale
        g_neg = params.g_min + window * np.clip(-weights, 0, None) / scale
        if self.config.use_program_verify:
            program_and_verify(self._g_pos, g_pos)
            program_and_verify(self._g_neg, g_neg)
        else:
            self._g_pos.program_pulse(g_pos)
            self._g_neg.program_pulse(g_neg)

    def effective_weights(self, t_seconds: float = 1.0) -> np.ndarray:
        """Weight matrix implied by the current (drifted) conductances."""
        if self._weight_scale is None:
            raise StateError("crossbar has not been programmed")
        params = self.config.device
        window = params.g_max - params.g_min
        diff = self._g_pos.drifted(t_seconds) - self._g_neg.drifted(t_seconds)
        return diff / window * self._weight_scale

    def _ir_drop_factor(self) -> np.ndarray:
        """First-order IR-drop attenuation per cell.

        A cell at wordline *i*, bitline *j* sees ``(i + j)`` wire segments
        between itself and the drivers/sense amps; the delivered voltage is
        attenuated by ``1 / (1 + R_wire * G_cell_avg * (i + j))``.  This is
        the standard first-order approximation to the full resistive-mesh
        solve (adequate for trend studies; a mesh solver would refine, not
        reshape, the results).
        """
        params = self.config.device
        g_avg = (params.g_max + params.g_min) / 2.0
        i_idx = np.arange(self.config.rows)[:, None]
        j_idx = np.arange(self.config.cols)[None, :]
        return 1.0 / (
            1.0 + self.config.wire_resistance_ohm * g_avg * (i_idx + j_idx)
        )

    @profiled("imc.mvm")
    def mvm(
        self,
        x: np.ndarray,
        t_seconds: float = 1.0,
        ideal: bool = False,
    ) -> np.ndarray:
        """One analog matrix-vector product ``y = W^T x``.

        *x* is expected pre-normalized to [-1, 1].  With ``ideal=True``
        the physical chain is bypassed (exact float MVM on the programmed
        target weights' ideal mapping) -- the reference for error studies.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.config.rows,):
            raise ValueError(f"input must be ({self.config.rows},)")
        if self._weight_scale is None:
            raise StateError("crossbar has not been programmed")
        if ideal:
            return self.effective_weights(1.0).T @ x

        voltages = self.config.dac.quantize(x)
        self.ledger.charge_dac(self.config.dac, x.size)
        g_pos = self._read_noisy(self._g_pos, t_seconds)
        g_neg = self._read_noisy(self._g_neg, t_seconds)
        attenuation = self._ir_drop_factor()
        diff = (g_pos - g_neg) * attenuation
        currents = diff.T @ voltages  # Ohm + KCL per bitline
        digitized = self.config.adc.quantize(currents)
        self.ledger.charge_adc(self.config.adc, currents.size)
        return self._currents_to_weights_domain(digitized)

    @profiled("imc.mvm_batch")
    def mvm_batch(
        self,
        xs: np.ndarray,
        t_seconds: float = 1.0,
        impl: str = "numpy",
    ) -> np.ndarray:
        """Batch of independent analog MVMs, one conversion per vector.

        *xs* is ``(k, rows)``; returns ``(k, cols)``, each row exactly
        what :meth:`mvm` would return for the same input at the same RNG
        state.  ``impl="scalar"`` is the reference oracle (a Python loop
        over :meth:`mvm`); ``impl="numpy"`` draws the read noise of all
        ``k`` MVMs in one call and batches the DAC/ADC quantization, the
        IR-drop attenuation and the bitline contraction.  Both paths
        consume the shared G+/G- noise stream in the same order, so the
        results are bit-identical (pinned by the equivalence tests).
        """
        xs = np.atleast_2d(np.asarray(xs, dtype=np.float64))
        if xs.ndim != 2 or xs.shape[1] != self.config.rows:
            raise ValueError(f"inputs must be (k, {self.config.rows})")
        if self._weight_scale is None:
            raise StateError("crossbar has not been programmed")
        if impl == "scalar":
            return np.stack([self.mvm(x, t_seconds) for x in xs])
        if impl != "numpy":
            raise ValueError(f"impl must be 'scalar' or 'numpy', got {impl!r}")

        k = xs.shape[0]
        shape = (self.config.rows, self.config.cols)
        voltages = self.config.dac.quantize(xs)
        self.ledger.charge_dac(self.config.dac, xs.size)
        attenuation = self._ir_drop_factor()
        drift_pos = self._g_pos.drifted(t_seconds)
        drift_neg = self._g_neg.drifted(t_seconds)
        frac = self.config.device.read_noise_fraction
        rng = self._g_pos.rng
        currents = np.empty((k, self.config.cols))
        # Chunked so the per-chunk working set stays cache-resident (the
        # all-at-once formulation is memory-bound and *slower* than the
        # scalar loop); each chunk draws its interleaved (G+, G-) read
        # noise in one call whose C-order fill consumes the shared stream
        # exactly as sequential mvm() calls do -- bit-identical results.
        chunk = 16
        for lo in range(0, k, chunk):
            hi = min(lo + chunk, k)
            noise = rng.normal(0.0, frac, size=(hi - lo, 2) + shape)
            g_pos = np.clip(drift_pos * (1.0 + noise[:, 0]), 0.0, None)
            g_neg = np.clip(drift_neg * (1.0 + noise[:, 1]), 0.0, None)
            diff = (g_pos - g_neg) * attenuation
            # Batched gemm: (c, cols, rows) @ (c, rows, 1) -> (c, cols).
            currents[lo:hi] = np.matmul(
                diff.transpose(0, 2, 1), voltages[lo:hi, :, None]
            )[:, :, 0]
        digitized = self.config.adc.quantize(currents)
        self.ledger.charge_adc(self.config.adc, currents.size)
        return self._currents_to_weights_domain(digitized)

    def mvm_accumulated(
        self, xs: np.ndarray, t_seconds: float = 1.0
    ) -> np.ndarray:
        """Analog accumulation of several MVMs before one conversion [11].

        *xs* is ``(k, rows)`` with ``k <= accumulation_depth``; the k
        bitline current vectors are summed in the analog domain
        (sample-and-hold integration) and digitized once, cutting ADC
        energy by ``k`` at the cost of a wider current range per
        conversion.
        """
        xs = np.atleast_2d(np.asarray(xs, dtype=np.float64))
        k = xs.shape[0]
        if k > self.config.accumulation_depth:
            raise ValueError(
                f"{k} accumulations exceed depth "
                f"{self.config.accumulation_depth}"
            )
        if xs.shape[1] != self.config.rows:
            raise ValueError(f"inputs must be (k, {self.config.rows})")
        if self._weight_scale is None:
            raise StateError("crossbar has not been programmed")
        attenuation = self._ir_drop_factor()
        total_current = np.zeros(self.config.cols)
        for x in xs:
            voltages = self.config.dac.quantize(x)
            self.ledger.charge_dac(self.config.dac, x.size)
            diff = (
                self._read_noisy(self._g_pos, t_seconds)
                - self._read_noisy(self._g_neg, t_seconds)
            ) * attenuation
            total_current += diff.T @ voltages
        digitized = self.config.adc.quantize(total_current)
        self.ledger.charge_adc(self.config.adc, total_current.size)
        return self._currents_to_weights_domain(digitized)

    def _read_noisy(self, device: NVMDevice, t_seconds: float) -> np.ndarray:
        return device.read(t_seconds)

    def _currents_to_weights_domain(self, currents: np.ndarray) -> np.ndarray:
        params = self.config.device
        window = params.g_max - params.g_min
        return currents / window / self.config.dac.v_max * self._weight_scale
