"""The asynchronous micro-batched evaluation service.

:class:`EvaluationService` is the front door the ROADMAP's serving
story needs: callers :meth:`~EvaluationService.submit` evaluation
requests for any registered :class:`~repro.core.api.Workload` and get
back a future; a dispatcher thread coalesces queued requests into
micro-batches (size- and time-bounded, priority lanes first) and ships
each batch through :class:`~repro.exec.ParallelEvaluator`, which
resolves content-addressed :class:`~repro.exec.ResultCache` hits,
deduplicates identical requests inside the batch and evaluates the rest
under the :mod:`repro.resilience` retry/deadline contract.  The queue
is bounded: producers either block (backpressure) or get an immediate
:class:`~repro.serve.request.AdmissionRejected` with a reason.

Serving never perturbs results: evaluation happens through the same
``Workload.evaluate`` a direct caller would use, and every random
stream derives from request content, so a served
:class:`~repro.core.api.RunResult` is byte-identical (canonical form)
to a direct evaluation -- the equivalence the conformance tests pin.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.api import (
    RunResult,
    build_run_result,
    ensure_default_workloads,
    get_workload,
)
from repro.core.errors import ValidationError, WorkerCrashError
from repro.exec import ParallelEvaluator, coerce_cache
from repro.exec.parallel import CacheLike, EvaluatorLike, make_evaluator
from repro.obs.ledger import get_ledger
from repro.obs.trace import TraceContext, derive_trace_id, get_tracer
from repro.perf import get_profiler
from repro.resilience import BackoffPolicy, Deadline, resilient_run
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import AdmissionRejected, EvalRequest


def _evaluate_request_core(task: Tuple) -> Dict[str, Any]:
    """The evaluation itself: transient faults retried under the
    policy, the deadline bounds the retry storm, and any terminal
    exception becomes an error result instead of killing the batch, so
    the service degrades per-request."""
    from repro.core.api import build_run_result
    from repro.core.errors import TransientFault

    name, config, seed, impl, policy, timeout_s = task[:6]
    ensure_default_workloads()
    start = time.perf_counter()
    try:
        workload = get_workload(name)
        deadline = Deadline(timeout_s) if timeout_s is not None else None
        outcome = resilient_run(
            lambda: workload.evaluate(config, seed=seed, impl=impl),
            policy=policy,
            retry_on=(TransientFault,),
            deadline=deadline,
        )
        result: RunResult = outcome.value
        if outcome.attempts > 1:
            result = RunResult(
                **{**result.to_json(), "attempts": outcome.attempts}
            )
        return result.to_json()
    except Exception as exc:
        return build_run_result(
            name,
            {},
            config=config,
            seed=seed,
            impl=impl,
            wall_time_s=time.perf_counter() - start,
            status="error",
            error=str(exc),
            error_type=type(exc).__name__,
            trace_id=getattr(exc, "trace_id", None),
        ).to_json()


def _evaluate_request_task(task: Tuple) -> Dict[str, Any]:
    """Evaluate one request in a worker (module-level: picklable).

    Returns ``RunResult.to_json()`` unconditionally when tracing is off
    (the seed-compatible wire shape).  Under tracing the task tuple
    carries a 7th element -- the trace wire context -- and the return
    value is an envelope: the result plus every span and ledger event
    produced in the worker, keyed by the originating trace id so the
    coordinator can tell a fresh computation from a replayed cache hit.
    """
    wire = task[6] if len(task) > 6 else None
    if wire is None:
        return _evaluate_request_core(task)

    from repro.obs.ledger import get_ledger
    from repro.obs.trace import TraceContext, enable_tracing, get_tracer

    tracer = enable_tracing()  # idempotent; installs the perf bridge
    ledger = get_ledger()
    if wire.get("ledger"):
        ledger.enable()
    ctx = TraceContext.from_wire(wire)
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    span = tracer.start_span(
        "worker",
        trace_id=ctx.trace_id,
        parent_id=ctx.span_id,
        order=0,
    )
    with tracer.activate(span.context, sink=spans), \
            ledger.capture(events):
        record = _evaluate_request_core(task)
        if record.get("trace_id") is None:
            record["trace_id"] = ctx.trace_id
        status = "ok" if record.get("status") == "ok" else "error"
        if status == "error":
            ledger.event(
                "request.error",
                trace_id=ctx.trace_id,
                error_type=record.get("error_type"),
            )
    get_tracer().end_span(span, status=status, sink=spans)
    return {
        "__obs__": True,
        "trace_id": ctx.trace_id,
        "result": record,
        "spans": spans,
        "events": events,
    }


class EvaluationService:
    """Async micro-batched front door over the workload registry.

    Parameters follow the suite-wide ``parallel=`` / ``cache=``
    contract (see :mod:`repro.core.api`): *parallel* selects the batch
    execution engine (default: a serial cache-aware engine -- batching
    still wins through dedup and amortized dispatch), *cache* memoizes
    results across batches by request digest.  *batch_size* bounds
    micro-batch occupancy; *batch_wait_s* is how long the dispatcher
    holds an under-full batch open for coalescing; *max_queue* bounds
    the admission queue.
    """

    def __init__(
        self,
        *,
        batch_size: int = 8,
        batch_wait_s: float = 0.005,
        max_queue: int = 256,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
        policy: Optional[BackoffPolicy] = None,
        default_timeout_s: Optional[float] = None,
        start: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        if batch_wait_s < 0:
            raise ValidationError("batch_wait_s must be >= 0")
        if max_queue < 1:
            raise ValidationError("max_queue must be >= 1")
        self.batch_size = batch_size
        self.batch_wait_s = batch_wait_s
        self.max_queue = max_queue
        engine = make_evaluator(parallel, cache)
        if engine is None:
            engine = ParallelEvaluator(
                max_workers=1, mode="serial", cache=coerce_cache(cache)
            )
        self._evaluator = engine
        self.policy = policy or BackoffPolicy(max_attempts=1)
        self.default_timeout_s = default_timeout_s
        self.metrics = ServiceMetrics()

        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._space_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        # Queue entries: (priority_rank, seq, enqueued, request, future,
        # trace-or-None); the heap only ever compares the first two
        # elements because seq is unique.
        self._queue: List[Tuple] = []
        self._seq = 0
        # Per-digest occurrence counters: the n-th submission of the
        # same request content gets the n-th deterministic trace id, so
        # a rerun of the same request stream reproduces its trace ids.
        self._trace_occurrences: Dict[str, int] = {}
        # Stitched submissions (an inherited trace context) instead
        # allocate the root span's order per (trace_id, parent span):
        # each distinct digest under one parent gets the next slot, and
        # a resubmission of the same digest (a cluster replay) reuses
        # its slot -- identical span ids across attempts and backends.
        self._ctx_orders: Dict[Tuple[str, str], Dict[str, int]] = {}
        # Set by cluster backends so stitched traces carry which shard
        # served the request (volatile: excluded from canonical form).
        self.shard_index: Optional[int] = None
        self._pending = 0
        self._draining = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._stopped:
                raise ValidationError("service has been shut down")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="repro-serve-dispatcher",
                daemon=True,
            )
            self._thread.start()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def cache(self):
        return self._evaluator.cache

    @property
    def alive(self) -> bool:
        """Whether the dispatcher is up -- the liveness signal a shard
        supervisor polls."""
        thread = self._thread
        return (
            thread is not None and thread.is_alive() and not self._stopped
        )

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------ admission

    def submit_request(
        self,
        request: EvalRequest,
        *,
        block: bool = False,
        trace_ctx: Optional[TraceContext] = None,
    ) -> "Future[RunResult]":
        """Admit *request*; returns a future resolving to its
        :class:`~repro.core.api.RunResult`.

        A saturated queue raises :class:`AdmissionRejected` immediately
        unless ``block=True``, in which case the caller waits for space
        -- backpressure instead of rejection.  *trace_ctx* stitches the
        request's trace under a caller-side parent span (the cluster
        router or a campaign layer) instead of opening a fresh root.
        """
        get_workload(request.workload)  # unknown names fail fast
        future: "Future[RunResult]" = Future()
        with self._lock:
            self._check_admission()
            while len(self._queue) >= self.max_queue:
                if not block:
                    self.metrics.record_reject("queue full")
                    get_ledger().event(
                        "admission.rejected",
                        reason="queue full",
                        digest=request.digest,
                    )
                    raise AdmissionRejected(
                        f"queue is full ({self.max_queue} requests); "
                        "retry later or submit with block=True",
                        reason="queue full",
                    )
                self._space_ready.wait()
                self._check_admission()
            self._seq += 1
            trace = self._open_trace(request, trace_ctx)
            heapq.heappush(
                self._queue,
                (
                    request.priority_rank,
                    self._seq,
                    time.perf_counter(),
                    request,
                    future,
                    trace,
                ),
            )
            self._pending += 1
            self.metrics.record_submit(len(self._queue))
            self._work_ready.notify()
        return future

    def _open_trace(
        self,
        request: EvalRequest,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Optional[Dict[str, Any]]:
        """Allocate the request's deterministic trace id and open its
        root span (``None`` when tracing is off -- one boolean check).
        Called under the service lock (the occurrence counter).

        With a *trace_ctx* the request span nests under the caller's
        span in the caller's trace; its order slot is allocated per
        digest under that parent, so a cluster replay onto a fresh
        shard incarnation re-derives the exact span id of the first
        attempt (canonical traces stay byte-identical under chaos).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        digest = request.digest
        if trace_ctx is not None:
            trace_id = trace_ctx.trace_id
            parent_id = trace_ctx.span_id
            orders = self._ctx_orders.setdefault(
                (trace_id, parent_id), {}
            )
            order = orders.get(digest)
            if order is None:
                order = len(orders)
                orders[digest] = order
        else:
            occurrence = self._trace_occurrences.get(digest, 0)
            self._trace_occurrences[digest] = occurrence + 1
            trace_id = derive_trace_id(digest, occurrence)
            parent_id = ""
            order = 0
        root = tracer.start_span(
            "request",
            trace_id=trace_id,
            parent_id=parent_id,
            order=order,
            attributes={
                "workload": request.workload,
                "digest": digest,
                "seed": request.seed,
                "priority": str(request.priority),
            },
            volatile=(
                {"shard": self.shard_index}
                if self.shard_index is not None
                else None
            ),
        )
        get_ledger().event(
            "request.admitted",
            trace_id=trace_id,
            workload=request.workload,
            digest=digest,
        )
        return {
            "trace_id": trace_id,
            "root": root,
            "submitted_wall": time.time(),
        }

    def _check_admission(self) -> None:
        if self._stopped:
            self.metrics.record_reject("stopped")
            get_ledger().event("admission.rejected", reason="stopped")
            raise AdmissionRejected(
                "service is stopped", reason="stopped"
            )
        if self._draining:
            self.metrics.record_reject("draining")
            get_ledger().event("admission.rejected", reason="draining")
            raise AdmissionRejected(
                "service is draining", reason="draining"
            )

    def submit(
        self,
        workload: str,
        config: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
        impl: Optional[str] = None,
        priority: Any = "normal",
        timeout_s: Optional[float] = None,
        block: bool = False,
        trace_ctx: Optional[TraceContext] = None,
    ) -> "Future[RunResult]":
        """Convenience :meth:`submit_request` from bare arguments."""
        return self.submit_request(
            EvalRequest(
                workload=workload,
                config=dict(config or {}),
                seed=seed,
                impl=impl,
                priority=priority,
                timeout_s=(
                    timeout_s if timeout_s is not None
                    else self.default_timeout_s
                ),
            ),
            block=block,
            trace_ctx=trace_ctx,
        )

    def submit_async(self, request: EvalRequest, *, block: bool = False):
        """Awaitable form of :meth:`submit_request` for asyncio callers
        (wraps the concurrent future into the running event loop)."""
        import asyncio

        return asyncio.wrap_future(self.submit_request(request, block=block))

    def evaluate(
        self,
        workload: str,
        config: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ) -> RunResult:
        """Synchronous round trip: submit and wait for the result."""
        return self.submit(workload, config, **kwargs).result()

    # ------------------------------------------------------------- shutdown

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has resolved.

        Returns False if *timeout* elapsed first.  Admission stays open
        (callers wanting a terminal drain use :meth:`shutdown`), so a
        drain only completes when producers pause.
        """
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        with self._lock:
            while self._pending > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the service.

        ``drain=True`` (graceful) completes every queued request first;
        ``drain=False`` cancels queued requests (their futures raise
        :class:`AdmissionRejected`) and stops after the in-flight batch.
        Idempotent.
        """
        with self._lock:
            if self._stopped and self._thread is None:
                return
            self._draining = True
            if not drain:
                cancelled = [entry for entry in self._queue]
                self._queue.clear()
                for entry in cancelled:
                    _, _, _, request, future, trace = entry
                    self._pending -= 1
                    if trace is not None:
                        get_tracer().end_span(
                            trace["root"], status="cancelled"
                        )
                        get_ledger().event(
                            "request.cancelled",
                            trace_id=trace["trace_id"],
                        )
                    future.set_exception(
                        AdmissionRejected(
                            "service shut down before this request "
                            "was dispatched",
                            reason="cancelled",
                        )
                    )
                if cancelled:
                    self._idle.notify_all()
            self._space_ready.notify_all()
        if drain:
            self.drain(timeout)
        with self._lock:
            self._stopped = True
            self._work_ready.notify_all()
            self._space_ready.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if self.cache is not None:
            self.cache.close()

    def kill(self) -> None:
        """Crash the service the way a dead process would.

        Unlike :meth:`shutdown`, queued futures are *stranded* -- they
        never resolve -- and nothing is drained or joined: that is
        exactly what callers of a crashed shard observe, and it is the
        failure mode :class:`~repro.serve.cluster.ShardCluster` must
        recover from by restarting the shard and replaying the run
        ledger.  A chaos/testing hook, not a lifecycle method.
        """
        with self._lock:
            self._stopped = True
            self._draining = True
            self._queue.clear()
            self._pending = 0
            self._work_ready.notify_all()
            self._space_ready.notify_all()
            self._idle.notify_all()
        get_ledger().event("shard.killed")

    # ------------------------------------------------------------ dispatch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._run_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                # A batch-level failure must not strand futures.
                for entry in batch:
                    future = entry[3]
                    if not future.done():
                        future.set_exception(exc)
                with self._lock:
                    self._pending = max(0, self._pending - len(batch))
                    self._idle.notify_all()

    def _next_batch(self) -> Optional[List[Tuple]]:
        """Pop up to ``batch_size`` requests, priority lanes first.

        The first request opens the batch; the dispatcher then holds it
        open for up to ``batch_wait_s`` (or until full) so closely
        spaced requests coalesce -- the micro-batching window.
        """
        with self._lock:
            while not self._queue and not self._stopped:
                self._work_ready.wait()
            if self._stopped and not self._queue:
                return None
            batch = [self._pop_entry()]
            hold_until = time.perf_counter() + self.batch_wait_s
            while len(batch) < self.batch_size:
                if self._queue:
                    batch.append(self._pop_entry())
                    continue
                remaining = hold_until - time.perf_counter()
                if remaining <= 0 or self._stopped:
                    break
                self._work_ready.wait(remaining)
            self._space_ready.notify_all()
            return batch

    def _pop_entry(self) -> Tuple:
        _, _, enqueued, request, future, trace = heapq.heappop(self._queue)
        return (enqueued, time.perf_counter(), request, future, trace)

    def _open_batch_spans(
        self, batch: List[Tuple]
    ) -> Tuple[List[Any], List[Optional[Dict[str, Any]]], set]:
        """Per traced request: record its measured ``queue.wait`` span,
        open its ``batch`` span, and build the wire context its worker
        task will evaluate under."""
        tracer = get_tracer()
        ledger_on = get_ledger().enabled
        batch_spans: List[Any] = []
        wires: List[Optional[Dict[str, Any]]] = []
        batch_trace_ids: set = set()
        for _, _, _, _, trace in batch:
            if trace is None:
                batch_spans.append(None)
                wires.append(None)
                continue
            tid = trace["trace_id"]
            batch_trace_ids.add(tid)
            root_id = trace["root"].span_id
            now_wall = time.time()
            # Explicit orders: the span names differ, so both ids stay
            # unique under the root, and a replayed attempt (cluster
            # restart after a kill) re-derives the same ids instead of
            # consuming fresh order-counter slots.
            tracer.record_span(
                "queue.wait",
                trace_id=tid,
                parent_id=root_id,
                order=0,
                start_s=trace["submitted_wall"],
                end_s=now_wall,
            )
            span = tracer.start_span(
                "batch",
                trace_id=tid,
                parent_id=root_id,
                order=0,
                volatile={"batch_size": len(batch)},
                start_s=now_wall,
            )
            batch_spans.append(span)
            wire = span.context.to_wire()
            wire["ledger"] = ledger_on
            wires.append(wire)
        return batch_spans, wires, batch_trace_ids

    def _run_batch(self, batch: List[Tuple]) -> None:
        profiler = get_profiler()
        tracer = get_tracer()
        ledger = get_ledger()
        start = time.perf_counter()
        batch_spans, wires, batch_trace_ids = self._open_batch_spans(batch)
        tasks = [
            (
                request.workload,
                dict(request.config),
                request.seed,
                request.impl,
                self.policy,
                (
                    request.timeout_s
                    if request.timeout_s is not None
                    else self.default_timeout_s
                ),
            ) + ((wire,) if wire is not None else ())
            for (_, _, request, _, _), wire in zip(batch, wires)
        ]
        keys = [request.digest for _, _, request, _, _ in batch]
        cache = self._evaluator.cache
        hits_before = cache.stats()["hits"] if cache is not None else 0
        computed_before = self._evaluator.tasks_computed
        records = self._map_with_recovery(tasks, keys)
        records = self._retry_error_followers(tasks, keys, records, cache)
        computed = self._evaluator.tasks_computed - computed_before
        cache_hits = (
            (cache.stats()["hits"] - hits_before) if cache is not None else 0
        )

        # Keys whose final record is good: a follower retry may have
        # repopulated the slot its leader's error vacated, and the
        # leader's failure must not evict that fresh value below.
        ok_keys = set()
        for key, record in zip(keys, records):
            payload = (
                record["result"]
                if isinstance(record, dict) and record.get("__obs__")
                else record
            )
            if payload.get("status") == "ok":
                ok_keys.add(key)

        retries = 0
        done_at = time.perf_counter()
        done_wall = time.time()
        for entry, key, bspan, record in zip(
            batch, keys, batch_spans, records
        ):
            enqueued, dispatched, request, future, trace = entry
            envelope = (
                record
                if isinstance(record, dict) and record.get("__obs__")
                else None
            )
            payload = envelope["result"] if envelope is not None else record
            if trace is not None:
                tid = trace["trace_id"]
                # The same evaluation can serve many traces (dedup,
                # cache); the result each caller sees is bound to *its*
                # trace.  trace_id is volatile, so canonical identity
                # is untouched.
                payload = {**payload, "trace_id": tid}
            result = RunResult.from_json(payload)
            if not result.ok and cache is not None and key not in ok_keys:
                # Failures are outcomes, not reusable pure values.
                cache.delete(key)
            retries += max(0, result.attempts - 1)
            if trace is not None:
                status = "ok" if result.ok else "error"
                if envelope is not None and envelope["trace_id"] == tid:
                    # Freshly computed for this very request: its
                    # worker/kernel spans belong in this trace.
                    tracer.add_records(envelope["spans"])
                    ledger.extend(envelope["events"])
                elif envelope is not None:
                    origin = (
                        "evaluation.deduped"
                        if envelope["trace_id"] in batch_trace_ids
                        else "cache.hit"
                    )
                    ledger.event(
                        origin, trace_id=tid,
                        source_trace=envelope["trace_id"],
                    )
                else:
                    # Plain cached payload from an untraced run.
                    ledger.event("cache.hit", trace_id=tid)
                tracer.end_span(bspan, status=status, end_s=done_wall)
                tracer.end_span(
                    trace["root"], status=status, end_s=done_wall
                )
                ledger.event(
                    "request.done", trace_id=tid, status=result.status
                )
            self.metrics.record_done(
                latency_s=done_at - enqueued,
                queue_wait_s=dispatched - enqueued,
                ok=result.ok,
            )
            future.set_result(result)
        self.metrics.record_batch(
            size=len(batch),
            computed=computed,
            cache_hits=cache_hits,
            deduped=max(0, len(batch) - computed - cache_hits),
            retries=retries,
        )
        if profiler.enabled:
            profiler.record("serve.batch", time.perf_counter() - start)
            profiler.count("serve.batch.requests", len(batch))
        with self._lock:
            self._pending = max(0, self._pending - len(batch))
            if self._pending == 0:
                self._idle.notify_all()

    def _map_with_recovery(
        self, tasks: List[Tuple], keys: List[str]
    ) -> List[Any]:
        """Dispatch the batch, degrading per-digest on worker death.

        :class:`~repro.core.errors.WorkerCrashError` from the engine
        names the quarantined digests (poison tasks that crashed their
        worker repeatedly); those become error records, and the rest of
        the batch is re-mapped -- one poison request must never take
        its batch-mates down with it.  The loop is bounded: every pass
        either completes or quarantines at least one digest.
        """
        slots = list(range(len(tasks)))
        records: List[Any] = [None] * len(tasks)
        while slots:
            try:
                mapped = self._evaluator.map(
                    _evaluate_request_task,
                    [tasks[i] for i in slots],
                    keys=[keys[i] for i in slots],
                )
            except WorkerCrashError as exc:
                quarantined = set(exc.quarantined)
                get_ledger().event(
                    "batch.worker_crash",
                    quarantined=sorted(quarantined),
                )
                survivors = []
                for i in slots:
                    if quarantined and keys[i] not in quarantined:
                        survivors.append(i)
                    else:
                        records[i] = self._crash_record(tasks[i], exc)
                slots = survivors
                continue
            for i, record in zip(slots, mapped):
                records[i] = record
            slots = []
        return records

    @staticmethod
    def _crash_record(task: Tuple, exc: WorkerCrashError) -> Dict[str, Any]:
        """An error :class:`RunResult` wire record for a request whose
        evaluation kept crashing its worker."""
        name, config, seed, impl = task[0], task[1], task[2], task[3]
        return build_run_result(
            name,
            {},
            config=config,
            seed=seed,
            impl=impl,
            status="error",
            error=str(exc),
            error_type="WorkerCrashError",
            trace_id=exc.trace_id,
        ).to_json()

    def _retry_error_followers(
        self,
        tasks: List[Tuple],
        keys: List[str],
        records: List[Any],
        cache,
    ) -> List[Any]:
        """In-batch dedup must not fan one error out to every caller.

        When identical requests coalesce onto a single evaluation and
        that evaluation *fails*, only the first requester should see
        the failure -- each coalesced follower gets a fresh, cache- and
        dedup-free attempt (errors are outcomes, not reusable values;
        the same contract :class:`ResultCache` enforces across
        batches).  A follower success repopulates the cache slot the
        error left vacant.
        """
        first_at: Dict[str, int] = {}
        followers: List[int] = []
        for idx, key in enumerate(keys):
            if key not in first_at:
                first_at[key] = idx
                continue
            shared = records[idx]
            payload = (
                shared["result"]
                if isinstance(shared, dict) and shared.get("__obs__")
                else shared
            )
            if payload.get("status") != "ok":
                followers.append(idx)
        if not followers:
            return records
        fresh = self._evaluator.map(
            _evaluate_request_task, [tasks[i] for i in followers]
        )
        for idx, record in zip(followers, fresh):
            records[idx] = record
            payload = (
                record["result"]
                if isinstance(record, dict) and record.get("__obs__")
                else record
            )
            if payload.get("status") == "ok" and cache is not None:
                cache.put(keys[idx], record)
        return records

    # ------------------------------------------------------------ reporting

    def gauges(self) -> Dict[str, float]:
        """Cheap live gauges for the flight recorder: lock-only reads,
        no evaluator or cache round trips."""
        with self._lock:
            return {
                "queue_depth": float(len(self._queue)),
                "pending": float(self._pending),
                "alive": 1.0 if not self._stopped else 0.0,
            }

    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot including cache and evaluator accounting."""
        cache = self._evaluator.cache
        return self.metrics.snapshot(
            queue_depth=self.queue_depth,
            cache_stats=cache.stats() if cache is not None else None,
            evaluator_stats=self._evaluator.stats(),
        )


def serve_requests(
    requests: Sequence[EvalRequest],
    *,
    batch_size: int = 8,
    batch_wait_s: float = 0.005,
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
    policy: Optional[BackoffPolicy] = None,
) -> Tuple[List[RunResult], Dict[str, Any]]:
    """One-shot convenience: serve *requests* to completion.

    Builds a service sized to the request list, submits everything
    (blocking admission = backpressure, no rejections), drains, and
    returns ``(results in request order, metrics snapshot)``.
    """
    service = EvaluationService(
        batch_size=batch_size,
        batch_wait_s=batch_wait_s,
        max_queue=max(1, len(requests)),
        parallel=parallel,
        cache=cache,
        policy=policy,
    )
    try:
        futures = [
            service.submit_request(request, block=True)
            for request in requests
        ]
        results = [future.result() for future in futures]
        snapshot = service.snapshot()
    finally:
        service.shutdown()
    return results, snapshot
