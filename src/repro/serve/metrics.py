"""Service metrics: the numbers behind every serving claim.

:class:`ServiceMetrics` accumulates per-request latencies, queue-depth
samples, batch occupancies and outcome counters under its own lock, and
:meth:`ServiceMetrics.snapshot` folds them into the JSON report the
CLI, the bench and CI artifacts share: p50/p95/p99 latency, throughput,
batch occupancy, cache-hit ratio, rejection and dedup accounting.

The percentile/summary math lives in :mod:`repro.obs.stats` (one
implementation for serve, the load generator, the benches and the
``repro obs`` reports); ``percentile`` is re-exported here for
compatibility with pre-:mod:`repro.obs` callers.  When the process-wide
:class:`repro.obs.MetricsRegistry` is enabled, every recording also
feeds its counters/histograms, so the unified ``snapshot()`` covers the
service too.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import get_metrics
from repro.obs.stats import percentile, summary as _summary

#: Cap on retained per-request samples; beyond it the reservoir keeps
#: the most recent window so snapshots stay O(bounded) in a long-lived
#: service.
MAX_SAMPLES = 100_000


class ServiceMetrics:
    """Thread-safe accumulator for one :class:`EvaluationService`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.rejected_reasons: Dict[str, int] = {}
        self.cache_hits = 0
        self.deduped = 0
        self.computed = 0
        self.retries = 0
        self.batches = 0
        self._latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._batch_sizes: List[int] = []
        self._queue_depths: List[int] = []

    # ------------------------------------------------------------ recording

    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self._queue_depths.append(queue_depth)
            self._trim(self._queue_depths)
            in_flight = self.submitted - self.completed - self.failed
        registry = get_metrics()
        if registry.enabled:
            registry.inc("serve.submitted")
            registry.set_gauge("serve.queue_depth", queue_depth)
            registry.set_gauge("serve.in_flight", in_flight)

    def record_reject(self, reason: str) -> None:
        with self._lock:
            self.rejected += 1
            self.rejected_reasons[reason] = (
                self.rejected_reasons.get(reason, 0) + 1
            )
        get_metrics().inc("serve.rejected")

    def record_batch(
        self,
        *,
        size: int,
        computed: int,
        cache_hits: int,
        deduped: int,
        retries: int = 0,
    ) -> None:
        with self._lock:
            self.batches += 1
            self.computed += computed
            self.cache_hits += cache_hits
            self.deduped += deduped
            self.retries += retries
            self._batch_sizes.append(size)
            self._trim(self._batch_sizes)
        registry = get_metrics()
        if registry.enabled:
            registry.inc("serve.batches")
            registry.inc("serve.computed", computed)
            registry.inc("serve.cache_hits", cache_hits)
            registry.inc("serve.deduped", deduped)
            registry.inc("serve.retries", retries)
            registry.observe("serve.batch_occupancy", size)

    def record_done(
        self, *, latency_s: float, queue_wait_s: float, ok: bool
    ) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1
            self._latencies.append(latency_s)
            self._queue_waits.append(queue_wait_s)
            self._trim(self._latencies)
            self._trim(self._queue_waits)
            in_flight = self.submitted - self.completed - self.failed
        registry = get_metrics()
        if registry.enabled:
            registry.inc("serve.completed" if ok else "serve.failed")
            registry.observe("serve.latency_s", latency_s)
            registry.observe("serve.queue_wait_s", queue_wait_s)
            registry.set_gauge("serve.in_flight", in_flight)

    @staticmethod
    def _trim(samples: List[Any]) -> None:
        if len(samples) > MAX_SAMPLES:
            del samples[: len(samples) - MAX_SAMPLES]

    # ------------------------------------------------------------ reporting

    def snapshot(
        self,
        *,
        queue_depth: int = 0,
        cache_stats: Optional[Dict[str, Any]] = None,
        evaluator_stats: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON-serializable snapshot of everything measured."""
        with self._lock:
            elapsed = time.perf_counter() - self._started
            done = self.completed + self.failed
            served = self.cache_hits + self.deduped + self.computed
            snapshot = {
                "elapsed_s": elapsed,
                "requests": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                    "rejected_reasons": dict(self.rejected_reasons),
                    "in_flight": self.submitted - done,
                },
                "throughput_rps": done / elapsed if elapsed > 0 else 0.0,
                "latency_s": _summary(self._latencies),
                "queue_wait_s": _summary(self._queue_waits),
                "queue_depth": {
                    "current": queue_depth,
                    "max": max(self._queue_depths, default=0),
                    "mean": (
                        sum(self._queue_depths) / len(self._queue_depths)
                        if self._queue_depths
                        else 0.0
                    ),
                },
                "batches": {
                    "count": self.batches,
                    "mean_occupancy": (
                        sum(self._batch_sizes) / len(self._batch_sizes)
                        if self._batch_sizes
                        else 0.0
                    ),
                    "max_occupancy": max(self._batch_sizes, default=0),
                },
                "evaluations": {
                    "computed": self.computed,
                    "cache_hits": self.cache_hits,
                    "deduped": self.deduped,
                    "retries": self.retries,
                    "cache_hit_ratio": (
                        self.cache_hits / served if served else 0.0
                    ),
                    "dedup_ratio": (
                        self.deduped / served if served else 0.0
                    ),
                },
            }
        if cache_stats is not None:
            snapshot["cache"] = cache_stats
        if evaluator_stats is not None:
            snapshot["evaluator"] = evaluator_stats
        return snapshot

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.snapshot(**kwargs), indent=2, sort_keys=True)
