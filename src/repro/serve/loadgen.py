"""Synthetic load generation for the evaluation service.

Serving traffic is never uniform: a few popular configurations dominate
(the head), with a long tail of rare ones.  :func:`generate_requests`
reproduces that shape deterministically -- a seeded config pool drawn
from the workload's declared :meth:`~repro.core.api.Workload.space`
plus a Zipf-like rank distribution over it -- so benches measure the
dedup/cache behaviour real traffic exercises, repeatably.

:func:`run_load` replays a request list against a service either as a
**burst** (all at once: the saturation point) or **paced** at an
offered rate in requests/second (open-loop arrivals), returning the
achieved throughput and per-request latency summary for one point of a
latency/throughput curve.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.api import Workload, example_config
from repro.core.errors import ValidationError
from repro.obs.stats import summary as _summary
from repro.serve.request import AdmissionRejected, EvalRequest
from repro.serve.service import EvaluationService


def config_pool(
    workload: Workload, size: int, *, seed: int = 0
) -> List[Dict[str, Any]]:
    """*size* distinct valid configurations of *workload*.

    Starts from the cheap :func:`~repro.core.api.example_config` and
    cycles the first parameter's declared choices (then a second, when
    the pool outgrows them), so every pool member stays valid while the
    pool is genuinely heterogeneous.  Deterministic in *seed* (the seed
    offsets the cycling phase).
    """
    if size < 1:
        raise ValidationError("pool size must be >= 1")
    space = workload.space()
    base = example_config(workload)
    names = [n for n, choices in space.items() if len(choices) > 1]
    if not names:
        return [dict(base) for _ in range(size)]
    primary = names[0]
    secondary = names[1] if len(names) > 1 else None
    pool = []
    for i in range(size):
        cfg = dict(base)
        offset = i + seed
        choices = space[primary]
        cfg[primary] = choices[offset % len(choices)]
        if secondary is not None:
            choices2 = space[secondary]
            cfg[secondary] = choices2[(offset // len(choices)) % len(choices2)]
        pool.append(cfg)
    return pool


def zipf_weights(size: int, skew: float = 1.5) -> np.ndarray:
    """Normalized Zipf rank weights ``1/rank**skew`` over *size* ranks."""
    if size < 1:
        raise ValidationError("size must be >= 1")
    if skew < 0:
        raise ValidationError("skew must be >= 0")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def generate_requests(
    workload: Workload,
    num_requests: int,
    *,
    pool_size: int = 6,
    skew: float = 1.5,
    seed: int = 0,
    priority_mix: Optional[Dict[str, float]] = None,
) -> List[EvalRequest]:
    """A deterministic, duplicate-heavy request stream.

    Requests draw configurations from a ``pool_size`` pool with
    Zipf(*skew*) popularity; a duplicate draw is a *true* duplicate
    (same config, same seed -> same digest), which is what gives the
    service's dedup and cache something real to do.  *priority_mix*
    maps lane names to probabilities (default: all ``"normal"``).
    """
    if num_requests < 1:
        raise ValidationError("num_requests must be >= 1")
    pool = config_pool(workload, pool_size, seed=seed)
    rng = np.random.default_rng(np.random.SeedSequence([seed, num_requests]))
    picks = rng.choice(len(pool), size=num_requests, p=zipf_weights(
        len(pool), skew))
    lanes: Sequence[str] = ["normal"] * num_requests
    if priority_mix:
        names = sorted(priority_mix)
        probs = np.array([priority_mix[n] for n in names], dtype=np.float64)
        probs = probs / probs.sum()
        lanes = [
            names[i] for i in rng.choice(len(names), size=num_requests,
                                         p=probs)
        ]
    return [
        EvalRequest(
            workload=workload.name,
            config=pool[int(pick)],
            # One seed per pool entry, so repeats of a config dedup.
            seed=seed + int(pick),
            priority=lane,
        )
        for pick, lane in zip(picks, lanes)
    ]


def run_load(
    service: EvaluationService,
    requests: Sequence[EvalRequest],
    *,
    rate_rps: Optional[float] = None,
    block: bool = True,
) -> Dict[str, Any]:
    """Replay *requests* against *service* and measure one load point.

    ``rate_rps=None`` submits the whole list at once (burst /
    saturation); otherwise arrivals are paced open-loop at the offered
    rate.  Returns offered/achieved throughput, a latency summary over
    the completed requests, and error/rejection counts.
    """
    if rate_rps is not None and rate_rps <= 0:
        raise ValidationError("rate_rps must be positive")
    futures = []
    rejected = 0
    start = time.perf_counter()
    for index, request in enumerate(requests):
        if rate_rps is not None:
            due = start + index / rate_rps
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        submitted_at = time.perf_counter()
        try:
            futures.append(
                (submitted_at, service.submit_request(request, block=block))
            )
        except AdmissionRejected:
            rejected += 1
    results = []
    latencies = []
    errors = 0
    for submitted_at, future in futures:
        result = future.result()
        results.append(result)
        latencies.append(time.perf_counter() - submitted_at)
        if not result.ok:
            errors += 1
    elapsed = time.perf_counter() - start
    completed = len(results)
    return {
        "offered_rps": rate_rps,
        "num_requests": len(requests),
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "elapsed_s": elapsed,
        "achieved_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_s": _summary(latencies),
        "results": results,
    }
