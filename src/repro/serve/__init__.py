"""Asynchronous micro-batched evaluation serving.

The front door that turns the suite's simulators into a servable
system (ROADMAP north-star: "serves heavy traffic ... sharding,
batching, async, caching"):

- :class:`EvaluationService` -- bounded priority queue, micro-batch
  coalescing, dispatch onto :class:`~repro.exec.ParallelEvaluator`
  with content-addressed caching, in-batch dedup,
  :mod:`repro.resilience` retry/deadline handling, admission control
  and graceful drain/shutdown;
- :class:`EvalRequest` / :class:`AdmissionRejected` -- the request
  vocabulary;
- :class:`ServiceMetrics` -- queue depth, batch occupancy, latency
  percentiles, throughput and cache-hit accounting as JSON snapshots;
- :func:`serve_requests` -- one-shot request-list serving;
- :class:`ShardCluster` / :class:`ShardRouter` / :class:`Supervisor`
  -- fault-tolerant sharding: consistent-hash routing on request
  digests, heartbeat/deadline failure detection, shard restart with
  ledger-replay recovery, per-workload circuit breakers;
- :class:`ProcessShard` -- a shard hosted in its own worker process
  (``backend="process"``): true multi-core scaling with the same
  exactly-once and replay guarantees, metrics/ledger collected across
  the process boundary;
- :class:`CapacityModel` / :class:`ShardCostModel` -- the capacity/TCO
  model: shards needed and cost per million requests at a target p99,
  from measured throughput, latency and scaling efficiency;
- :func:`run_chaos_campaign` -- deterministic chaos-schedule driver
  asserting exactly-once completion under shard kills;
- :mod:`repro.serve.loadgen` -- deterministic synthetic traffic for
  benches and the ``repro serve`` CLI.
"""

from repro.serve.capacity import (
    CapacityModel,
    CapacityPlan,
    ShardCostModel,
    capacity_report,
)
from repro.serve.cluster import (
    ShardCluster,
    ShardRouter,
    Supervisor,
    incomplete_from_ledger,
    run_chaos_campaign,
)
from repro.serve.procshard import ProcessShard
from repro.serve.loadgen import (
    config_pool,
    generate_requests,
    run_load,
    zipf_weights,
)
from repro.serve.metrics import ServiceMetrics, percentile
from repro.serve.request import (
    AdmissionRejected,
    EvalRequest,
    PRIORITY_LANES,
    load_requests,
)
from repro.serve.service import EvaluationService, serve_requests

__all__ = [
    "AdmissionRejected",
    "CapacityModel",
    "CapacityPlan",
    "EvalRequest",
    "EvaluationService",
    "PRIORITY_LANES",
    "ProcessShard",
    "ServiceMetrics",
    "ShardCluster",
    "ShardCostModel",
    "ShardRouter",
    "Supervisor",
    "capacity_report",
    "config_pool",
    "generate_requests",
    "incomplete_from_ledger",
    "load_requests",
    "percentile",
    "run_chaos_campaign",
    "run_load",
    "serve_requests",
    "zipf_weights",
]
