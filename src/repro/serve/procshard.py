"""Process-backed service shards: one :class:`EvaluationService` per OS
process.

The in-process shards of :class:`~repro.serve.cluster.ShardCluster`
prove the fault-tolerance contract but share one GIL, so N shards never
buy N cores.  :class:`ProcessShard` hosts each shard's service in its
own worker process (``multiprocessing`` spawn context: no inherited
locks from the threaded parent), fed over a command queue and answering
on a response queue:

- the parent keeps the shard-local future table, so the cluster's
  set-once exactly-once futures work unchanged across the process
  boundary;
- the child streams back ``done`` records (``RunResult`` wire form),
  periodic ``stats`` heartbeats carrying its
  :class:`~repro.serve.metrics.ServiceMetrics` snapshot, and -- when the
  run ledger was enabled at spawn time -- its ledger events, which the
  parent merges into the process-wide ledger tagged with the shard id
  (cross-process metric/ledger collection);
- large ndarray request configs ride the zero-copy shared-memory
  transport of :mod:`repro.exec.shm`: the parent swaps them for leased
  :class:`~repro.exec.shm.ShmDescriptor` wire forms before the command
  queue (``transport="auto"`` above ``shm_threshold_bytes``, same
  contract as :class:`~repro.exec.parallel.ParallelEvaluator`), the
  child attaches zero-copy views, and the lease is released when the
  ``done``/``reject`` answer drains -- or at shutdown for stranded
  requests, whose cluster replay re-encodes from the original request;
- process liveness *is* the heartbeat: ``kill -9`` on the child makes
  :attr:`ProcessShard.alive` go false, the
  :class:`~repro.serve.cluster.Supervisor` restarts the slot with a
  fresh incarnation, and the cluster replays the stranded requests from
  the run ledger onto survivors exactly as in the in-process design.

A shard killed after computing a result but before the parent drained
the response pipe can still deliver that result; the cluster's set-once
future discards the replayed duplicate, so delivery stays exactly-once
either way.

Spawn-context caveat: the child re-imports the parent's ``__main__``,
so the creating program must be import-safe -- a real module or script
whose top level is guarded by ``if __name__ == "__main__":``.  Driving
``backend="process"`` from a stdin-fed or interactive interpreter fails
(the child cannot re-import ``<stdin>`` and dies before reporting
ready); all repo surfaces (``repro`` CLI, pytest, the bench scripts)
are spawn-safe.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import threading
import time
from concurrent.futures import Future
from functools import partial
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.api import RunResult
from repro.core.errors import ValidationError
from repro.exec.shm import (
    DEFAULT_THRESHOLD_BYTES,
    ShmArena,
    decode_payload,
    payload_bytes,
)
from repro.obs.ledger import RunLedger, get_ledger
from repro.obs.trace import TraceContext, get_tracer
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import AdmissionRejected, EvalRequest

#: Transports a shard accepts for large request configs (same contract
#: as :class:`~repro.exec.parallel.ParallelEvaluator`).
_TRANSPORTS = ("auto", "pickle", "shm")

#: Keys of the picklable service spec a worker process builds its
#: :class:`EvaluationService` from.  ``parallel`` must be None/bool/int
#: and ``cache`` None or a path string -- live objects cannot cross the
#: spawn boundary.
SPEC_KEYS = (
    "batch_size",
    "batch_wait_s",
    "max_queue",
    "parallel",
    "cache",
    "policy",
    "default_timeout_s",
)


def validate_process_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Check *spec* is spawn-safe and return a plain dict of it."""
    out = {key: spec.get(key) for key in SPEC_KEYS}
    parallel = out["parallel"]
    if parallel is not None and not isinstance(parallel, (bool, int)):
        raise ValidationError(
            "process shards take parallel=None/bool/int; a live "
            "evaluator object cannot cross the process boundary"
        )
    cache = out["cache"]
    if cache is not None and not isinstance(cache, str):
        raise ValidationError(
            "process shards take cache=None or a path string; a live "
            "ResultCache cannot cross the process boundary"
        )
    return out


def _shard_worker_main(
    shard_id: int,
    incarnation: int,
    cmd_queue: Any,
    out_queue: Any,
    spec: Dict[str, Any],
    ledger_on: bool,
    tracing_on: bool,
    heartbeat_s: float,
) -> None:
    """Worker-process entry point: host one shard's service.

    Protocol (parent -> child): ``("submit", rid, request_json)`` --
    plus a trailing trace wire context when the parent runs under
    tracing -- ``("snapshot", token)``, ``("stop", drain)``.  Child ->
    parent: ``("ready", pid)``, ``("done", rid, result_json)``,
    ``("reject", rid, reason, message)``, ``("stats", snapshot)``,
    ``("events", records)``, ``("spans", records)``, ``("snapshot",
    token, snapshot)``, ``("stopped", snapshot)``.  Every child message
    is prefixed with ``(kind, shard_id, incarnation, ...)`` so the
    parent can attribute it even in logs.
    """
    from repro.core.api import ensure_default_workloads
    from repro.serve.service import EvaluationService

    ledger = get_ledger()
    if ledger_on:
        ledger.enable()
    tracer = get_tracer()
    if tracing_on:
        from repro.obs.trace import enable_tracing

        tracer = enable_tracing()
    ensure_default_workloads()
    service = EvaluationService(
        batch_size=spec["batch_size"],
        batch_wait_s=spec["batch_wait_s"],
        max_queue=spec["max_queue"],
        parallel=spec["parallel"],
        cache=spec["cache"],
        policy=spec["policy"],
        default_timeout_s=spec["default_timeout_s"],
    )
    service.shard_index = shard_id
    events_sent = 0
    spans_sent = 0

    def _send(kind: str, *payload: Any) -> None:
        out_queue.put((kind, shard_id, incarnation) + payload)

    def _flush_events() -> None:
        nonlocal events_sent
        if not ledger.enabled:
            return
        records = ledger.events()
        if len(records) > events_sent:
            _send("events", records[events_sent:])
            events_sent = len(records)

    def _flush_spans() -> None:
        # Only completed spans are ever filed, so the span list grows
        # monotonically; an incremental cursor ships each record once.
        nonlocal spans_sent
        if not tracer.enabled:
            return
        records = tracer.spans()
        if len(records) > spans_sent:
            _send("spans", records[spans_sent:])
            spans_sent = len(records)

    def _on_done(rid: int, future: "Future[RunResult]") -> None:
        exc = future.exception()
        if exc is not None:
            _send(
                "reject", rid,
                getattr(exc, "reason", "error"), str(exc),
            )
            return
        _send("done", rid, future.result().to_json())

    _send("ready", os.getpid())
    while True:
        try:
            message = cmd_queue.get(timeout=heartbeat_s)
        except _queue.Empty:
            _flush_spans()
            _flush_events()
            _send("stats", service.snapshot())
            continue
        kind = message[0]
        if kind == "submit":
            rid, payload = message[1], message[2]
            wire = message[3] if len(message) > 3 else None
            try:
                # Large configs arrive as ShmDescriptor wire forms; the
                # decode is a zero-copy attach, not a deserialization.
                payload = dict(payload)
                payload["config"] = decode_payload(payload["config"])
                future = service.submit_request(
                    EvalRequest.from_json(payload),
                    block=True,
                    trace_ctx=(
                        TraceContext.from_wire(wire)
                        if wire is not None and tracer.enabled
                        else None
                    ),
                )
            except Exception as exc:
                _send(
                    "reject", rid,
                    getattr(exc, "reason", "error"), str(exc),
                )
                continue
            future.add_done_callback(partial(_on_done, rid))
        elif kind == "snapshot":
            _send("snapshot", message[1], service.snapshot())
        elif kind == "stop":
            service.shutdown(drain=bool(message[1]))
            _flush_spans()
            _flush_events()
            _send("stopped", service.snapshot())
            break


def merge_shard_events(
    ledger: RunLedger,
    shard_index: int,
    records: Any,
) -> None:
    """Merge one shipped batch of shard ledger events deterministically.

    Each record is tagged with the originating shard, its child-side
    sequence number is preserved as ``shard_seq`` (volatile), and the
    batch is sorted by ``(trace_id, shard_seq)`` before the extend --
    so two shards flushing concurrently can interleave their batches
    any way the pump threads race, yet each trace's event story arrives
    in the shard's own causal order and the canonical ledger form
    (grouped per trace) comes out byte-identical across runs.
    """
    if not ledger.enabled or not records:
        return
    tagged = [
        {
            **record,
            "shard": shard_index,
            "shard_seq": record.get("seq", position),
        }
        for position, record in enumerate(records)
    ]
    tagged.sort(
        key=lambda r: (str(r.get("trace_id", "")), r["shard_seq"])
    )
    ledger.extend(tagged)


class ProcessShard:
    """One shard of a :class:`~repro.serve.cluster.ShardCluster`, hosted
    in its own worker process.

    Implements the same surface the cluster drives on an in-process
    :class:`EvaluationService` shard -- ``submit_request``/``alive``/
    ``kill``/``shutdown``/``snapshot`` -- with the future table kept on
    the parent side of the pipe, which is what lets the cluster's
    exactly-once and ledger-replay machinery work unchanged when the
    shard is a real process that can die under ``kill -9``.
    """

    def __init__(
        self,
        index: int,
        spec: Mapping[str, Any],
        *,
        incarnation: int = 0,
        heartbeat_s: float = 0.05,
        start_timeout_s: float = 60.0,
        transport: str = "auto",
        shm_threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
        arena: Optional[ShmArena] = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValidationError("heartbeat_s must be positive")
        if transport not in _TRANSPORTS:
            raise ValidationError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        if shm_threshold_bytes < 1:
            raise ValidationError("shm_threshold_bytes must be >= 1")
        self.transport = transport
        self.shm_threshold_bytes = shm_threshold_bytes
        self._arena = arena
        self._owns_arena = arena is None
        self._rid_leases: Dict[int, Tuple[str, ...]] = {}
        self.index = index
        self.incarnation = incarnation
        self.heartbeat_s = heartbeat_s
        self.start_timeout_s = start_timeout_s
        self._spec = validate_process_spec(spec)
        self.max_queue = int(self._spec["max_queue"])
        self._ctx = multiprocessing.get_context("spawn")
        self._cmd: Any = self._ctx.Queue()
        self._out: Any = self._ctx.Queue()
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._futures: Dict[int, "Future[RunResult]"] = {}
        self._rid = 0
        self._submitted = 0
        self._finished = 0
        self._killed = False
        self._stopped = False
        self._ready = threading.Event()
        self._last_snapshot: Dict[str, Any] = ServiceMetrics().snapshot()
        self._last_heartbeat = time.monotonic()
        self._snapshot_waiters: Dict[int, Tuple[threading.Event, list]] = {}
        self._snapshot_token = 0
        self.pid: Optional[int] = None
        self._process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                index,
                incarnation,
                self._cmd,
                self._out,
                self._spec,
                get_ledger().enabled,
                get_tracer().enabled,
                heartbeat_s,
            ),
            name=f"repro-shard-{index}.{incarnation}",
            daemon=True,
        )
        self._process.start()
        self._pump_thread = threading.Thread(
            target=self._pump,
            name=f"repro-shard-{index}.{incarnation}-pump",
            daemon=True,
        )
        self._pump_thread.start()

    # ------------------------------------------------------------ liveness

    @property
    def alive(self) -> bool:
        """Process liveness doubles as the heartbeat: a ``kill -9`` is
        visible here within one supervisor sweep."""
        return (
            not self._stopped
            and not self._killed
            and self._process.is_alive()
        )

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until the worker finished importing and reported ready
        (benches call this so spawn cost stays out of measured time)."""
        return self._ready.wait(
            self.start_timeout_s if timeout is None else timeout
        )

    def heartbeat_age_s(self) -> float:
        return time.monotonic() - self._last_heartbeat

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._submitted - self._finished

    # ------------------------------------------------------------ transport

    @property
    def arena(self) -> ShmArena:
        """The shard's shared-memory arena (created on first shm use;
        cluster callers may inject one shared arena across shards)."""
        if self._arena is None:
            self._arena = ShmArena()
        return self._arena

    def _encode_config(self, payload: Dict[str, Any]) -> Tuple[str, ...]:
        """Swap large ndarrays in ``payload["config"]`` for leased
        descriptors; returns the lease digests (empty = plain pickle)."""
        if self.transport == "pickle":
            return ()
        config = payload["config"]
        if (
            self.transport == "auto"
            and payload_bytes(config, self.shm_threshold_bytes)
            < self.shm_threshold_bytes
        ):
            return ()
        encoded, leases = self.arena.encode(
            config, self.shm_threshold_bytes
        )
        payload["config"] = encoded
        return tuple(leases)

    # ------------------------------------------------------------ admission

    def submit_request(
        self,
        request: EvalRequest,
        *,
        block: bool = False,
        trace_ctx: Optional[TraceContext] = None,
    ) -> "Future[RunResult]":
        """Queue *request* into the worker; parent-side bounded
        admission mirrors the child service's ``max_queue`` contract.
        *trace_ctx* rides the command queue as a trailing wire element,
        so the child service stitches its spans under the caller's
        (router's) span."""
        if not self.alive:
            raise AdmissionRejected(
                "shard process is not running", reason="stopped"
            )
        future: "Future[RunResult]" = Future()
        with self._lock:
            while self._submitted - self._finished >= self.max_queue:
                if not block:
                    raise AdmissionRejected(
                        f"shard queue is full ({self.max_queue} "
                        "requests); retry later or submit with "
                        "block=True",
                        reason="queue full",
                    )
                self._space.wait(self.heartbeat_s)
                if self._stopped or self._killed:
                    raise AdmissionRejected(
                        "shard process is not running", reason="stopped"
                    )
            self._rid += 1
            rid = self._rid
            self._futures[rid] = future
            self._submitted += 1
        tracer = get_tracer()
        wire = (
            trace_ctx.to_wire()
            if trace_ctx is not None and tracer.enabled
            else None
        )
        payload = request.to_json()
        leases: Tuple[str, ...] = ()
        try:
            encode_start = time.time()
            leases = self._encode_config(payload)
            if leases:
                with self._lock:
                    self._rid_leases[rid] = leases
                if wire is not None:
                    # Ephemeral: a process-backend transport artifact,
                    # visible in raw exports and the critical-path
                    # breakdown but excluded from canonical identity
                    # (an inproc run has no such span).
                    tracer.record_span(
                        "transport.encode",
                        trace_id=trace_ctx.trace_id,
                        parent_id=trace_ctx.span_id,
                        order=0,
                        start_s=encode_start,
                        end_s=time.time(),
                        volatile={
                            "ephemeral": True,
                            "shard": self.index,
                            "leases": len(leases),
                        },
                    )
            self._cmd.put(("submit", rid, payload) + (
                (wire,) if wire is not None else ()
            ))
        except Exception as exc:
            with self._lock:
                self._futures.pop(rid, None)
                self._rid_leases.pop(rid, None)
                self._submitted -= 1
            if leases:
                self.arena.release_all(list(leases))
            raise AdmissionRejected(
                f"shard command pipe is down: {exc}", reason="stopped"
            )
        return future

    # ------------------------------------------------------------ responses

    def _pump(self) -> None:
        """Drain the response queue, resolving shard-local futures and
        merging cross-process observability back into this process."""
        while True:
            try:
                message = self._out.get(timeout=self.heartbeat_s)
            except _queue.Empty:
                if not self._process.is_alive() and (
                    self._stopped or self._killed
                ):
                    break
                if not self._process.is_alive() and self._ready.is_set():
                    # Crashed (not via kill()): nothing more will come
                    # once the pipe is drained; leave futures stranded
                    # for the cluster to replay.
                    break
                continue
            except (EOFError, OSError):
                break
            self._handle(message)
        # Unblock anyone waiting for a synchronous snapshot.
        with self._lock:
            waiters = list(self._snapshot_waiters.values())
            self._snapshot_waiters.clear()
        for event, _slot in waiters:
            event.set()

    def _handle(self, message: Tuple) -> None:
        kind = message[0]
        payload = message[3:]
        self._last_heartbeat = time.monotonic()
        if kind == "ready":
            self.pid = payload[0]
            self._ready.set()
        elif kind == "done":
            rid, record = payload
            self._resolve(rid, result=RunResult.from_json(record))
        elif kind == "reject":
            rid, reason, text = payload
            self._resolve(
                rid,
                error=AdmissionRejected(
                    f"shard {self.index} rejected request: {text}",
                    reason=reason,
                ),
            )
        elif kind == "stats":
            self._last_snapshot = payload[0]
        elif kind == "events":
            ledger = get_ledger()
            if ledger.enabled:
                merge_shard_events(ledger, self.index, payload[0])
        elif kind == "spans":
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_records(
                    [
                        {
                            **record,
                            "volatile": {
                                **(record.get("volatile") or {}),
                                "shard": self.index,
                            },
                        }
                        for record in payload[0]
                    ]
                )
        elif kind == "snapshot":
            token, snapshot = payload
            self._last_snapshot = snapshot
            with self._lock:
                waiter = self._snapshot_waiters.pop(token, None)
            if waiter is not None:
                waiter[1].append(snapshot)
                waiter[0].set()
        elif kind == "stopped":
            self._last_snapshot = payload[0]

    def _resolve(
        self,
        rid: int,
        *,
        result: Optional[RunResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            future = self._futures.pop(rid, None)
            leases = self._rid_leases.pop(rid, ())
            if future is not None:
                self._finished += 1
                self._space.notify_all()
        if leases and self._arena is not None:
            # The worker answered, so its view served its purpose; the
            # last lease parks the segment in the arena's idle LRU.
            self._arena.release_all(list(leases))
        if future is None:
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    # ------------------------------------------------------------ lifecycle

    def kill(self) -> None:
        """Crash the shard the way an OOM kill would: SIGKILL the
        worker, strand its futures.  Recovery (restart + ledger replay)
        is the cluster supervisor's job."""
        self._killed = True
        try:
            self._process.kill()
        except Exception:
            pass
        with self._lock:
            self._space.notify_all()
        get_ledger().event(
            "shard.killed", shard=self.index, pid=self.pid
        )

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the worker process (gracefully draining by default) and
        fail any still-unresolved local futures."""
        if self._stopped:
            return
        self._stopped = True
        join_s = 10.0 if timeout is None else timeout
        if self._process.is_alive() and not self._killed:
            try:
                self._cmd.put(("stop", bool(drain)))
            except Exception:
                pass
            self._process.join(join_s)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(5.0)
        self._pump_thread.join(max(1.0, self.heartbeat_s * 4))
        with self._lock:
            stranded = list(self._futures.values())
            self._futures.clear()
            stranded_leases = [
                digest
                for leases in self._rid_leases.values()
                for digest in leases
            ]
            self._rid_leases.clear()
            self._space.notify_all()
        if stranded_leases and self._arena is not None:
            # Stranded requests are replayed (re-encoded) elsewhere by
            # the cluster; their payload leases die with this shard.
            self._arena.release_all(stranded_leases)
        if self._arena is not None and self._owns_arena:
            self._arena.close()
        for future in stranded:
            if not future.done():
                future.set_exception(
                    AdmissionRejected(
                        "shard shut down before this request resolved",
                        reason="cancelled",
                    )
                )
        for channel in (self._cmd, self._out):
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:
                pass

    # ------------------------------------------------------------ reporting

    def snapshot(self, timeout_s: float = 1.0) -> Dict[str, Any]:
        """The child service's metrics snapshot.

        Queries the live worker synchronously; a dead or unresponsive
        worker answers with the last heartbeat snapshot, so the cluster
        aggregate never blocks on a corpse.
        """
        if self.alive and self._ready.is_set():
            with self._lock:
                self._snapshot_token += 1
                token = self._snapshot_token
                event = threading.Event()
                slot: list = []
                self._snapshot_waiters[token] = (event, slot)
            try:
                self._cmd.put(("snapshot", token))
            except Exception:
                with self._lock:
                    self._snapshot_waiters.pop(token, None)
            else:
                if event.wait(timeout_s) and slot:
                    return dict(slot[0])
                with self._lock:
                    self._snapshot_waiters.pop(token, None)
        return dict(self._last_snapshot)


__all__ = [
    "ProcessShard",
    "SPEC_KEYS",
    "merge_shard_events",
    "validate_process_spec",
]
