"""Fault-tolerant sharded serving: supervised shards behind a router.

The ROADMAP's serving tier promises "sharding, batching, async,
caching" *under failure*: a shard process dying mid-campaign must not
lose or duplicate a single result.  This module is that robustness
layer:

- :class:`ShardRouter` -- consistent hashing (virtual nodes) on the
  request's content digest, so the same request always lands on the
  same shard (shard-local caches and in-batch dedup keep working) and
  removing one shard only remaps that shard's keys;
- :class:`ShardCluster` -- N :class:`~repro.serve.EvaluationService`
  shards behind one ``submit_request`` front door, an in-flight table
  keyed by cluster request id, and per-workload
  :class:`~repro.resilience.CircuitBreaker` admission;
- :class:`Supervisor` -- heartbeat liveness + progress-deadline stall
  detection; a dead shard is restarted (fresh service, bumped
  incarnation) and its lost in-flight requests are *replayed*: when
  the run ledger is enabled the replay set is derived from the event
  stream (``cluster.submit`` without a matching ``cluster.done``, via
  :func:`incomplete_from_ledger`), with the in-memory table as the
  safety net that supplies the futures;
- :func:`run_chaos_campaign` -- the deterministic chaos driver: a
  seeded :class:`~repro.resilience.ChaosPolicy` injects shard kills,
  submission delays and duplicate bursts at pinned request indices
  while the campaign asserts exactly-once completion.

Shards come in two backends.  ``backend="inproc"`` (the default) hosts
each shard's :class:`EvaluationService` in this process -- cheap, fully
deterministic, the chaos-test substrate.  ``backend="process"`` hosts
each shard in its own worker process
(:class:`~repro.serve.procshard.ProcessShard`): true multi-core
scaling, real ``kill -9`` failure modes, and cross-process metric /
ledger collection, with the same router, exactly-once futures, circuit
breakers and ledger-replay recovery driving both.

Exactly-once delivery is enforced structurally: every cluster future
is resolved under the cluster lock by the *first* shard completion for
its request id (a replayed duplicate evaluation is discarded, not
surfaced), and evaluation itself is deterministic, so whichever
attempt wins yields byte-identical canonical results.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from concurrent.futures import Future
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.api import RunResult, get_workload
from repro.core.errors import ValidationError
from repro.exec.parallel import CacheLike, EvaluatorLike, coerce_cache
from repro.obs.ledger import get_ledger
from repro.obs.stats import summary as _summary
from repro.obs.trace import TraceContext, derive_trace_id, get_tracer
from repro.resilience import BackoffPolicy, ChaosPolicy, CircuitBreaker
from repro.serve.procshard import ProcessShard, validate_process_spec
from repro.serve.request import AdmissionRejected, EvalRequest
from repro.serve.service import EvaluationService

#: Shard hosting backends: in-process services vs one worker process
#: per shard.
BACKENDS = ("inproc", "process")


class ShardRouter:
    """Consistent-hash routing of request digests onto shard ids.

    Each shard owns ``replicas`` virtual nodes on a 64-bit ring; a
    digest routes to the first virtual node at or after its own hash.
    When a shard is down (``alive`` excludes it), the walk continues
    around the ring, which spreads the dead shard's keys across the
    survivors instead of dumping them on one neighbor.
    """

    def __init__(self, num_shards: int, replicas: int = 64) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        if replicas < 1:
            raise ValidationError("replicas must be >= 1")
        self.num_shards = num_shards
        self.replicas = replicas
        ring: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(replicas):
                ring.append((self._hash(f"shard-{shard}#{vnode}"), shard))
        ring.sort()
        self._hashes = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def route(
        self, digest: str, alive: Optional[Set[int]] = None
    ) -> Optional[int]:
        """The shard owning *digest*, restricted to *alive* shards when
        given.  ``None`` when no candidate shard is alive."""
        if alive is not None and not alive:
            return None
        position = bisect.bisect_right(self._hashes, self._hash(digest))
        count = len(self._owners)
        for step in range(count):
            owner = self._owners[(position + step) % count]
            if alive is None or owner in alive:
                return owner
        return None

    def assignments(
        self,
        digests: Sequence[str],
        alive: Optional[Set[int]] = None,
    ) -> Dict[int, List[str]]:
        """Digests grouped by owning shard (balance/stability probes)."""
        grouped: Dict[int, List[str]] = {}
        for digest in digests:
            owner = self.route(digest, alive=alive)
            if owner is not None:
                grouped.setdefault(owner, []).append(digest)
        return grouped


def incomplete_from_ledger(
    events: Sequence[Mapping[str, Any]],
    shard: Optional[int] = None,
) -> List[int]:
    """Replay the run ledger: request ids submitted but never finished.

    A request's story in the ledger is ``cluster.submit`` (one per
    dispatch attempt; the *last* one names the shard currently
    responsible) closed by ``cluster.done`` or ``cluster.error``.  The
    ids returned are those whose story is still open -- restricted to
    *shard* when given -- in first-submission order, which is exactly
    the set a supervisor must re-submit after that shard dies.  Pure
    function of the event list, so it is testable offline against an
    exported ledger.
    """
    last_shard: Dict[int, int] = {}
    order: List[int] = []
    done: Set[int] = set()
    for record in events:
        name = record.get("event")
        rid = record.get("rid")
        if rid is None:
            continue
        if name == "cluster.submit":
            if rid not in last_shard:
                order.append(rid)
            last_shard[rid] = record.get("shard", -1)
        elif name in ("cluster.done", "cluster.error"):
            done.add(rid)
    return [
        rid
        for rid in order
        if rid not in done and (shard is None or last_shard[rid] == shard)
    ]


class _Entry:
    """One in-flight cluster request: the set-once future plus its
    current shard assignment and (under tracing) its router span."""

    __slots__ = ("rid", "request", "future", "shard", "resolved", "trace")

    def __init__(self, rid: int, request: EvalRequest) -> None:
        self.rid = rid
        self.request = request
        self.future: "Future[RunResult]" = Future()
        self.shard: Optional[int] = None
        self.resolved = False
        self.trace: Optional[Any] = None  # the open cluster.request span


class _ShardSlot:
    """One shard position: the current service incarnation plus the
    liveness/progress bookkeeping the supervisor reads."""

    __slots__ = (
        "index",
        "service",
        "incarnation",
        "restarts",
        "completions",
        "progress_mark",
        "progress_at",
    )

    def __init__(self, index: int, service: Any) -> None:
        self.index = index
        self.service = service  # EvaluationService or ProcessShard
        self.incarnation = 0
        self.restarts = 0
        self.completions = 0
        self.progress_mark = 0
        self.progress_at = time.monotonic()


class Supervisor:
    """Failure detector and restarter for a :class:`ShardCluster`.

    Every ``heartbeat_s`` the supervisor polls each shard's dispatcher
    liveness and restarts dead shards (replaying their lost requests).
    ``stall_timeout_s`` adds deadline detection: a shard that holds
    in-flight requests but makes no completion progress for that long
    is declared dead even though its thread still reports alive --
    the wedged-but-breathing failure mode heartbeats alone miss.
    """

    def __init__(
        self,
        cluster: "ShardCluster",
        heartbeat_s: float = 0.02,
        stall_timeout_s: Optional[float] = 30.0,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValidationError("heartbeat_s must be positive")
        if stall_timeout_s is not None and stall_timeout_s <= 0:
            raise ValidationError("stall_timeout_s must be positive")
        self.cluster = cluster
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.heartbeat_s):
            try:
                self.cluster.check_shards(
                    stall_timeout_s=self.stall_timeout_s
                )
            except Exception:  # pragma: no cover - defensive
                # A detector crash must not take supervision down.
                continue


class ShardCluster:
    """N supervised :class:`EvaluationService` shards, one front door.

    The constructor mirrors :class:`EvaluationService` (every shard is
    built from the same spec); *cache* is coerced once and shared so
    all shards address one content store.  ``supervise=True`` starts a
    :class:`Supervisor`; chaos tests pass ``supervise=False`` and step
    :meth:`check_shards` by hand for determinism.
    """

    def __init__(
        self,
        *,
        num_shards: int = 2,
        replicas: int = 64,
        batch_size: int = 8,
        batch_wait_s: float = 0.005,
        max_queue: int = 256,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
        policy: Optional[BackoffPolicy] = None,
        default_timeout_s: Optional[float] = None,
        breaker_threshold: int = 8,
        breaker_recovery_s: float = 0.5,
        supervise: bool = True,
        heartbeat_s: float = 0.02,
        stall_timeout_s: Optional[float] = 30.0,
        reroute_timeout_s: float = 10.0,
        backend: str = "inproc",
        shard_heartbeat_s: float = 0.05,
    ) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown shard backend {backend!r} "
                f"(choose from {BACKENDS})"
            )
        self.num_shards = num_shards
        self.backend = backend
        self.shard_heartbeat_s = shard_heartbeat_s
        self.router = ShardRouter(num_shards, replicas=replicas)
        self.breaker_threshold = breaker_threshold
        self.breaker_recovery_s = breaker_recovery_s
        self.reroute_timeout_s = reroute_timeout_s
        self._service_kwargs: Dict[str, Any] = {
            "batch_size": batch_size,
            "batch_wait_s": batch_wait_s,
            "max_queue": max_queue,
            "parallel": parallel,
            "cache": (
                cache if backend == "process" else coerce_cache(cache)
            ),
            "policy": policy,
            "default_timeout_s": default_timeout_s,
        }
        if backend == "process":
            # Fail fast on specs that cannot cross the spawn boundary.
            validate_process_spec(self._service_kwargs)
        self._lock = threading.Lock()
        # Trace stitching state: per-digest occurrence counters for
        # fresh cluster traces, and per-(trace_id, parent) order slots
        # for submissions nested under a caller's span (campaigns).
        # Mirrors the EvaluationService scheme one level up.
        self._trace_occurrences: Dict[str, int] = {}
        self._ctx_orders: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._slots = [
            _ShardSlot(index, self._make_service(index))
            for index in range(num_shards)
        ]
        self._inflight: Dict[int, _Entry] = {}
        self._by_shard: Dict[int, Set[int]] = {
            index: set() for index in range(num_shards)
        }
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._rid = 0
        self._stopped = False
        self.restarts = 0
        self.replayed = 0
        self.supervisor: Optional[Supervisor] = None
        if supervise:
            self.supervisor = Supervisor(
                self,
                heartbeat_s=heartbeat_s,
                stall_timeout_s=stall_timeout_s,
            )
            self.supervisor.start()

    def _make_service(self, index: int, incarnation: int = 0) -> Any:
        if self.backend == "process":
            spec = dict(self._service_kwargs)
            if isinstance(spec["cache"], str):
                # One store per shard: the consistent-hash router keeps
                # a digest on one shard, so shards never need to share
                # a file (and never race each other's writes).
                spec["cache"] = f"{spec['cache']}.shard{index}"
            return ProcessShard(
                index,
                spec,
                incarnation=incarnation,
                heartbeat_s=self.shard_heartbeat_s,
            )
        service = EvaluationService(**self._service_kwargs)
        # Stitched request spans carry which shard served them (the
        # process backend's worker sets the same field on its child
        # service, so both backends tag identically).
        service.shard_index = index
        return service

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard is serving (process shards report
        ready once their worker finished importing).  Benches call this
        so spawn cost stays out of measured throughput."""
        ok = True
        for slot in self._slots:
            service = slot.service
            if hasattr(service, "wait_ready"):
                ok = service.wait_ready(timeout) and ok
        return ok

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------ admission

    @property
    def cache(self):
        return self._service_kwargs["cache"]

    def breaker(self, workload: str) -> CircuitBreaker:
        """The per-workload circuit breaker (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(workload)
            if breaker is None:
                breaker = CircuitBreaker(
                    key=f"workload:{workload}",
                    failure_threshold=self.breaker_threshold,
                    recovery_time_s=self.breaker_recovery_s,
                )
                self._breakers[workload] = breaker
            return breaker

    def alive_shards(self) -> Set[int]:
        return {
            slot.index for slot in self._slots if slot.service.alive
        }

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def submit_request(
        self,
        request: EvalRequest,
        *,
        block: bool = False,
        trace_ctx: Optional[TraceContext] = None,
    ) -> "Future[RunResult]":
        """Route *request* to its shard; returns a cluster-level future
        that resolves exactly once even if the owning shard dies and
        the request is replayed elsewhere.  Under tracing the cluster
        opens one ``cluster.request`` span per request (nested under
        *trace_ctx* when a campaign layer supplies one); every dispatch
        attempt -- including chaos replays -- stitches the shard-side
        spans under that single span."""
        get_workload(request.workload)
        if self._stopped:
            raise AdmissionRejected(
                "cluster is stopped", reason="stopped"
            )
        self.breaker(request.workload).check()
        with self._lock:
            self._rid += 1
            entry = _Entry(self._rid, request)
            entry.trace = self._open_cluster_trace(request, trace_ctx)
            self._inflight[entry.rid] = entry
        try:
            self._dispatch(entry, block=block)
        except AdmissionRejected:
            with self._lock:
                self._inflight.pop(entry.rid, None)
            if entry.trace is not None:
                get_tracer().end_span(entry.trace, status="rejected")
            raise
        return entry.future

    def _open_cluster_trace(
        self,
        request: EvalRequest,
        trace_ctx: Optional[TraceContext],
    ) -> Optional[Any]:
        """Open the router-level span for one cluster request (``None``
        when tracing is off).  Called under the cluster lock.

        Standalone submissions root a fresh deterministic trace
        (``cluster|<digest>`` material, per-digest occurrence); nested
        submissions take the next per-digest order slot under the
        caller's span, same allocation scheme as
        :meth:`EvaluationService._open_trace` one level down.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        digest = request.digest
        if trace_ctx is not None:
            trace_id = trace_ctx.trace_id
            parent_id = trace_ctx.span_id
            orders = self._ctx_orders.setdefault(
                (trace_id, parent_id), {}
            )
            order = orders.get(digest)
            if order is None:
                order = len(orders)
                orders[digest] = order
        else:
            occurrence = self._trace_occurrences.get(digest, 0)
            self._trace_occurrences[digest] = occurrence + 1
            trace_id = derive_trace_id(f"cluster|{digest}", occurrence)
            parent_id = ""
            order = 0
        return tracer.start_span(
            "cluster.request",
            trace_id=trace_id,
            parent_id=parent_id,
            order=order,
            attributes={
                "workload": request.workload,
                "digest": digest,
                "seed": request.seed,
            },
        )

    def submit(
        self,
        workload: str,
        config: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
        impl: Optional[str] = None,
        priority: Any = "normal",
        timeout_s: Optional[float] = None,
        block: bool = False,
        trace_ctx: Optional[TraceContext] = None,
    ) -> "Future[RunResult]":
        """Convenience :meth:`submit_request` from bare arguments."""
        return self.submit_request(
            EvalRequest(
                workload=workload,
                config=dict(config or {}),
                seed=seed,
                impl=impl,
                priority=priority,
                timeout_s=timeout_s,
            ),
            block=block,
            trace_ctx=trace_ctx,
        )

    def _dispatch(self, entry: _Entry, *, block: bool) -> None:
        """Submit *entry* to its routed shard, re-routing around shards
        that die between routing and admission.  Registration in the
        in-flight table happens *before* the shard submit, so a kill
        racing this dispatch can only over-recover (replay a request
        the original submit also lands) -- the set-once future keeps
        delivery exactly-once either way."""
        deadline = time.monotonic() + self.reroute_timeout_s
        while True:
            if self._stopped:
                raise AdmissionRejected(
                    "cluster is stopped", reason="stopped"
                )
            shard_id = self.router.route(
                entry.request.digest, alive=self.alive_shards()
            )
            if shard_id is None:
                # Every shard is down; the supervisor is restarting
                # them.  Wait briefly rather than failing the caller.
                if time.monotonic() >= deadline:
                    raise AdmissionRejected(
                        "no live shards", reason="no live shards"
                    )
                time.sleep(0.005)
                continue
            slot = self._slots[shard_id]
            with self._lock:
                entry.shard = shard_id
                self._by_shard[shard_id].add(entry.rid)
            get_ledger().event(
                "cluster.submit",
                rid=entry.rid,
                shard=shard_id,
                digest=entry.request.digest,
                workload=entry.request.workload,
            )
            # Pass the trace context only when a span is actually open:
            # with tracing off the shard call stays byte-compatible
            # with minimal service stand-ins (tests, custom shards)
            # whose submit_request knows nothing of trace_ctx.
            submit_kwargs: Dict[str, Any] = {}
            if entry.trace is not None:
                submit_kwargs["trace_ctx"] = entry.trace.context
            try:
                shard_future = slot.service.submit_request(
                    entry.request,
                    block=block,
                    **submit_kwargs,
                )
            except AdmissionRejected as exc:
                with self._lock:
                    self._by_shard[shard_id].discard(entry.rid)
                if exc.reason in ("stopped", "draining"):
                    # The shard died under us; route around it.
                    if time.monotonic() >= deadline:
                        raise
                    continue
                raise
            shard_future.add_done_callback(
                partial(self._on_shard_done, entry, shard_id)
            )
            return

    # ----------------------------------------------------------- completion

    def _on_shard_done(
        self, entry: _Entry, shard_id: int, shard_future: "Future"
    ) -> None:
        """First completion wins: resolve the cluster future, close the
        ledger story, feed the breaker.  Later completions of the same
        request id (a replayed duplicate) are discarded here."""
        with self._lock:
            if entry.resolved:
                return
            entry.resolved = True
            self._inflight.pop(entry.rid, None)
            self._by_shard.get(shard_id, set()).discard(entry.rid)
            slot = self._slots[shard_id]
            slot.completions += 1
        breaker = self.breaker(entry.request.workload)
        exc = shard_future.exception()
        if exc is not None:
            get_ledger().event(
                "cluster.error",
                rid=entry.rid,
                shard=shard_id,
                error_type=type(exc).__name__,
            )
            breaker.record_failure()
            if entry.trace is not None:
                get_tracer().end_span(entry.trace, status="error")
            entry.future.set_exception(exc)
            return
        result: RunResult = shard_future.result()
        if result.ok:
            breaker.record_success()
        else:
            breaker.record_failure()
        get_ledger().event(
            "cluster.done",
            rid=entry.rid,
            shard=shard_id,
            status=result.status,
        )
        if entry.trace is not None:
            get_tracer().end_span(
                entry.trace, status="ok" if result.ok else "error"
            )
        entry.future.set_result(result)

    # ----------------------------------------------------- failure handling

    def kill_shard(self, shard_id: int) -> None:
        """Chaos verb: crash shard *shard_id* the way a dead process
        would (queued work stranded, nothing drained).  Recovery is the
        supervisor's job -- or an explicit :meth:`check_shards` call
        when running unsupervised."""
        slot = self._slots[shard_id]
        get_ledger().event("shard.down", shard=shard_id, cause="chaos.kill")
        slot.service.kill()

    def check_shards(
        self, stall_timeout_s: Optional[float] = None
    ) -> List[int]:
        """One failure-detection sweep; returns the restarted shards.

        Heartbeat: a shard whose dispatcher is gone is dead.  Deadline:
        a shard holding in-flight requests whose completion counter has
        not moved for *stall_timeout_s* is dead even if its thread
        still answers -- kill it so the restart path applies.
        """
        restarted: List[int] = []
        for slot in self._slots:
            if self._stopped:
                break
            if not slot.service.alive:
                get_ledger().event(
                    "shard.down", shard=slot.index, cause="heartbeat"
                )
                self._restart_shard(slot.index, cause="heartbeat")
                restarted.append(slot.index)
                continue
            if stall_timeout_s is None:
                continue
            now = time.monotonic()
            with self._lock:
                backlog = len(self._by_shard.get(slot.index, ()))
                completions = slot.completions
            if backlog == 0 or completions != slot.progress_mark:
                slot.progress_mark = completions
                slot.progress_at = now
            elif now - slot.progress_at >= stall_timeout_s:
                get_ledger().event(
                    "shard.down", shard=slot.index, cause="deadline",
                    stalled_s=now - slot.progress_at, backlog=backlog,
                )
                slot.service.kill()
                self._restart_shard(slot.index, cause="deadline")
                restarted.append(slot.index)
        return restarted

    def _restart_shard(self, shard_id: int, cause: str) -> None:
        """Replace the dead service with a fresh incarnation and replay
        every request the crash stranded."""
        with self._lock:
            slot = self._slots[shard_id]
            slot.incarnation += 1
            slot.restarts += 1
            slot.progress_mark = slot.completions
            slot.progress_at = time.monotonic()
            slot.service = self._make_service(
                shard_id, incarnation=slot.incarnation
            )
            self.restarts += 1
            lost = sorted(self._by_shard.get(shard_id, set()))
        get_ledger().event(
            "shard.restarted",
            shard=shard_id,
            cause=cause,
            incarnation=slot.incarnation,
            lost=len(lost),
        )
        self._replay(shard_id, lost)

    def _replay(self, shard_id: int, lost: List[int]) -> None:
        """Re-submit the requests shard *shard_id* lost.

        With the run ledger enabled the replay set comes from the
        event stream itself (:func:`incomplete_from_ledger`) -- the
        crash evidence an operator can audit -- and the in-memory
        table covers any ids the capped ledger dropped.  The table
        always supplies the futures; a ledger cannot resurrect those.
        """
        ledger = get_ledger()
        rids = list(lost)
        if ledger.enabled:
            from_ledger = incomplete_from_ledger(
                ledger.events(), shard=shard_id
            )
            known = set(lost)
            rids = [rid for rid in from_ledger if rid in known]
            rids += [rid for rid in lost if rid not in set(from_ledger)]
        for rid in rids:
            with self._lock:
                entry = self._inflight.get(rid)
                if entry is None or entry.resolved:
                    continue
                self._by_shard.get(shard_id, set()).discard(rid)
            ledger.event(
                "cluster.replay",
                rid=rid,
                from_shard=shard_id,
                digest=entry.request.digest,
            )
            self.replayed += 1
            try:
                self._dispatch(entry, block=True)
            except AdmissionRejected as exc:
                if not entry.resolved:
                    entry.future.set_exception(exc)

    # ------------------------------------------------------------- shutdown

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no cluster request is in flight."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            with self._lock:
                if not self._inflight:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.002)

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop supervision and every shard; stranded cluster futures
        (only possible with ``drain=False``) fail with a cancelled
        :class:`AdmissionRejected`."""
        if drain:
            self.drain(timeout)
        self._stopped = True
        if self.supervisor is not None:
            self.supervisor.stop(timeout)
        for slot in self._slots:
            slot.service.shutdown(drain=drain, timeout=timeout)
        with self._lock:
            stranded = [
                entry
                for entry in self._inflight.values()
                if not entry.resolved
            ]
            for entry in stranded:
                entry.resolved = True
            self._inflight.clear()
        for entry in stranded:
            if entry.trace is not None:
                get_tracer().end_span(entry.trace, status="cancelled")
            if not entry.future.done():
                entry.future.set_exception(
                    AdmissionRejected(
                        "cluster shut down before this request resolved",
                        reason="cancelled",
                    )
                )

    # ------------------------------------------------------------ reporting

    def gauges(self) -> Dict[str, float]:
        """Cheap live gauges for the flight recorder: lock-only reads
        plus per-shard liveness/backlog, no worker round trips (a
        :meth:`snapshot` queries process shards synchronously -- far
        too heavy for a periodic sampler)."""
        with self._lock:
            out: Dict[str, float] = {
                "in_flight": float(len(self._inflight)),
                "restarts": float(self.restarts),
                "replayed": float(self.replayed),
            }
            backlog = {
                index: float(len(rids))
                for index, rids in self._by_shard.items()
            }
        alive = 0
        for slot in self._slots:
            service = slot.service
            up = bool(service.alive)
            alive += int(up)
            out[f"shard{slot.index}.alive"] = float(up)
            out[f"shard{slot.index}.backlog"] = backlog.get(
                slot.index, 0.0
            )
            # EvaluationService exposes queue_depth; ProcessShard the
            # parent-side in_flight counter.
            depth = getattr(service, "queue_depth", None)
            if depth is None:
                depth = getattr(service, "in_flight", 0)
            out[f"shard{slot.index}.queue_depth"] = float(depth)
        out["alive"] = float(alive)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Cluster-wide metrics: shard snapshots aggregated into the
        same top-level shape :meth:`EvaluationService.snapshot` emits
        (the CLI and benches read ``batches``/``evaluations``), plus
        the robustness accounting (restarts, replays, breakers)."""
        per_shard = []
        for slot in self._slots:
            shard_snapshot = slot.service.snapshot()
            shard_snapshot["shard"] = slot.index
            shard_snapshot["incarnation"] = slot.incarnation
            shard_snapshot["restarts"] = slot.restarts
            per_shard.append(shard_snapshot)
        requests = {
            key: sum(s["requests"][key] for s in per_shard)
            for key in ("submitted", "completed", "failed", "rejected")
        }
        batch_count = sum(s["batches"]["count"] for s in per_shard)
        occupancy = sum(
            s["batches"]["mean_occupancy"] * s["batches"]["count"]
            for s in per_shard
        )
        evaluations = {
            key: sum(s["evaluations"][key] for s in per_shard)
            for key in ("computed", "cache_hits", "deduped", "retries")
        }
        served = (
            evaluations["computed"]
            + evaluations["cache_hits"]
            + evaluations["deduped"]
        )
        evaluations["cache_hit_ratio"] = (
            evaluations["cache_hits"] / served if served else 0.0
        )
        with self._lock:
            breakers = {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            }
            in_flight = len(self._inflight)
        return {
            "shards": self.num_shards,
            "alive": sorted(self.alive_shards()),
            "restarts": self.restarts,
            "replayed": self.replayed,
            "in_flight": in_flight,
            "requests": requests,
            "batches": {
                "count": batch_count,
                "mean_occupancy": (
                    occupancy / batch_count if batch_count else 0.0
                ),
            },
            "evaluations": evaluations,
            "breakers": breakers,
            "per_shard": per_shard,
        }


def run_chaos_campaign(
    requests: Sequence[EvalRequest],
    policy: Optional[ChaosPolicy] = None,
    *,
    num_shards: int = 4,
    batch_size: int = 8,
    batch_wait_s: float = 0.002,
    parallel: EvaluatorLike = None,
    cache: CacheLike = None,
    supervise: bool = True,
    heartbeat_s: float = 0.02,
    stall_timeout_s: Optional[float] = 30.0,
    breaker_threshold: int = 32,
    result_timeout_s: float = 60.0,
    recorder: Optional[Any] = None,
) -> Tuple[List[RunResult], Dict[str, Any]]:
    """Serve *requests* through a shard cluster under a chaos schedule.

    The driver walks the request stream; before admitting request *i*
    it performs every :class:`~repro.resilience.ChaosEvent` the policy
    pins there (``kill`` a shard, ``delay`` the submission path,
    ``burst`` duplicate copies).  Returns the results in request order
    plus a report the bench's ``--check`` gate asserts on: zero lost,
    zero duplicated, latency summary, restart/replay counts.

    A :class:`~repro.obs.recorder.FlightRecorder` passed as *recorder*
    is attached to the cluster's gauges, armed to dump on the chaos
    kill events, started for the campaign and stopped afterwards (its
    samples and dumps are kept for the caller to export).
    """
    policy = policy or ChaosPolicy()
    cluster = ShardCluster(
        num_shards=num_shards,
        batch_size=batch_size,
        batch_wait_s=batch_wait_s,
        parallel=parallel,
        cache=cache,
        supervise=supervise,
        heartbeat_s=heartbeat_s,
        stall_timeout_s=stall_timeout_s,
        breaker_threshold=breaker_threshold,
    )
    if recorder is not None:
        recorder.attach_cluster(cluster)
        recorder.watch_ledger()
        recorder.start()
    latencies: List[float] = []
    latency_lock = threading.Lock()

    def _observe(started: float, _future: "Future") -> None:
        elapsed = time.perf_counter() - started
        with latency_lock:
            latencies.append(elapsed)

    futures: List["Future[RunResult]"] = []
    extra_futures: List["Future[RunResult]"] = []
    kills: List[Dict[str, Any]] = []
    try:
        started_at = time.perf_counter()
        for index, request in enumerate(requests):
            for event in policy.actions_at(index):
                if event.action == "kill":
                    shard_id = event.shard % num_shards
                    kills.append(
                        {"at_request": index, "shard": shard_id}
                    )
                    cluster.kill_shard(shard_id)
                    if not supervise:
                        cluster.check_shards()
                elif event.action == "delay":
                    time.sleep(event.delay_s)
                elif event.action == "burst":
                    for _ in range(event.copies):
                        t0 = time.perf_counter()
                        future = cluster.submit_request(
                            request, block=True
                        )
                        future.add_done_callback(partial(_observe, t0))
                        extra_futures.append(future)
            t0 = time.perf_counter()
            future = cluster.submit_request(request, block=True)
            future.add_done_callback(partial(_observe, t0))
            futures.append(future)

        results: List[RunResult] = []
        lost = 0
        errors = 0
        for future in futures:
            try:
                result = future.result(timeout=result_timeout_s)
            except Exception:
                lost += 1
                results.append(None)  # type: ignore[arg-type]
                continue
            results.append(result)
            if not result.ok:
                errors += 1
        extra_lost = 0
        for future in extra_futures:
            try:
                future.result(timeout=result_timeout_s)
            except Exception:
                extra_lost += 1
        elapsed = time.perf_counter() - started_at

        ledger = get_ledger()
        duplicates = 0
        if ledger.enabled:
            seen: Dict[int, int] = {}
            for record in ledger.events():
                if record.get("event") == "cluster.done":
                    rid = record.get("rid")
                    seen[rid] = seen.get(rid, 0) + 1
            duplicates = sum(1 for count in seen.values() if count > 1)

        snapshot = cluster.snapshot()
        report = {
            "num_requests": len(requests),
            "num_shards": num_shards,
            "policy": policy.to_json(),
            "seed": policy.seed,
            "kills": kills,
            "completed": len(requests) - lost,
            "lost": lost,
            "errors": errors,
            "extras": len(extra_futures),
            "extra_lost": extra_lost,
            "duplicate_results": duplicates,
            "restarts": cluster.restarts,
            "replayed": cluster.replayed,
            "elapsed_s": elapsed,
            "latency_s": _summary(latencies),
            "snapshot": snapshot,
        }
        return results, report
    finally:
        if recorder is not None:
            recorder.stop()
        cluster.shutdown(drain=False)
