"""Capacity planning and TCO for the sharded serving tier.

The distributed-training simulator/TCO survey in PAPERS.md
(arXiv:2506.09275) argues that scaling decisions need a cost model next
to the performance model: "how many shards" is only half a design
answer without "at what cost per request".  This module is that model
for :mod:`repro.serve`:

- :class:`ShardCostModel` -- the cost table: dollars per shard-hour
  plus a fixed cluster overhead (router/supervisor host) per hour;
- :class:`CapacityModel` -- measured per-shard throughput, the
  service-time p99 and a measured scaling-efficiency curve (the
  1/2/4-shard points ``bench_scale`` produces) folded into a simple
  queueing heuristic: at utilization ``rho`` the tail inflates as
  ``p99(rho) = service_p99 / (1 - rho)``;
- :meth:`CapacityModel.plan` -- the design answer: the smallest shard
  count meeting a target p99 at an offered load, with utilization,
  modeled p99, cost per hour and **cost per million requests**;
- :func:`capacity_report` -- the JSON block ``bench_scale`` embeds and
  ``repro serve --capacity-report`` / ``repro capacity`` print.

Everything here is arithmetic over measured numbers -- no simulation,
no randomness -- so the unit tests pin exact hand-computed outputs.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.errors import ValidationError

#: Default ceiling on planned shard counts; beyond it a target is
#: declared infeasible rather than answered with an absurd cluster.
DEFAULT_MAX_SHARDS = 1024


@dataclass(frozen=True)
class ShardCostModel:
    """Dollars per hour of cluster: ``shards * shard_cost_per_hour +
    cluster_overhead_per_hour``.  Defaults approximate a small cloud VM
    per shard plus a lightweight router/supervisor host."""

    shard_cost_per_hour: float = 0.50
    cluster_overhead_per_hour: float = 0.20
    currency: str = "USD"

    def __post_init__(self) -> None:
        if self.shard_cost_per_hour < 0:
            raise ValidationError("shard_cost_per_hour must be >= 0")
        if self.cluster_overhead_per_hour < 0:
            raise ValidationError(
                "cluster_overhead_per_hour must be >= 0"
            )

    def cost_per_hour(self, shards: int) -> float:
        return (
            shards * self.shard_cost_per_hour
            + self.cluster_overhead_per_hour
        )

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class CapacityPlan:
    """One answered design question: serve *offered_rps* under
    *target_p99_s* -- with how many shards, at what cost."""

    offered_rps: float
    target_p99_s: float
    feasible: bool
    shards: Optional[int]
    utilization: Optional[float]
    modeled_p99_s: Optional[float]
    effective_rps: Optional[float]
    cost_per_hour: Optional[float]
    cost_per_million: Optional[float]
    reason: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


class CapacityModel:
    """Measured serving behaviour folded into a planning model.

    *per_shard_rps* is the sustained throughput of a single shard;
    *service_p99_s* the per-request service-time p99 at low load (the
    irreducible tail); *efficiency* maps shard counts to measured
    scaling efficiency (``speedup / shards``, 1.0 at one shard).
    Between measured counts the efficiency is interpolated linearly in
    ``log2(shards)``; beyond the largest measured count the last
    measured value is held flat -- a conservative extrapolation that
    never credits unmeasured superlinearity.
    """

    def __init__(
        self,
        per_shard_rps: float,
        service_p99_s: float,
        *,
        efficiency: Optional[Mapping[int, float]] = None,
        max_utilization: float = 0.95,
    ) -> None:
        if per_shard_rps <= 0:
            raise ValidationError("per_shard_rps must be positive")
        if service_p99_s <= 0:
            raise ValidationError("service_p99_s must be positive")
        if not 0 < max_utilization < 1:
            raise ValidationError("max_utilization must be in (0, 1)")
        self.per_shard_rps = float(per_shard_rps)
        self.service_p99_s = float(service_p99_s)
        self.max_utilization = float(max_utilization)
        curve = {1: 1.0}
        for count, value in (efficiency or {}).items():
            count = int(count)
            if count < 1:
                raise ValidationError("efficiency keys must be >= 1")
            if value <= 0:
                raise ValidationError(
                    "efficiency values must be positive"
                )
            curve[count] = float(value)
        self._efficiency = dict(sorted(curve.items()))

    # ----------------------------------------------------------- the model

    def efficiency_at(self, shards: int) -> float:
        """Scaling efficiency at *shards*, interpolated from the
        measured curve (log2 axis, clamped at the measured ends)."""
        if shards < 1:
            raise ValidationError("shards must be >= 1")
        counts = list(self._efficiency)
        if shards <= counts[0]:
            return self._efficiency[counts[0]]
        if shards >= counts[-1]:
            return self._efficiency[counts[-1]]
        if shards in self._efficiency:
            return self._efficiency[shards]
        for low, high in zip(counts, counts[1:]):
            if low < shards < high:
                span = math.log2(high) - math.log2(low)
                frac = (math.log2(shards) - math.log2(low)) / span
                return (
                    self._efficiency[low]
                    + frac
                    * (self._efficiency[high] - self._efficiency[low])
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def effective_rps(self, shards: int) -> float:
        """Cluster capacity at *shards*: linear scaling discounted by
        the measured efficiency."""
        return self.per_shard_rps * shards * self.efficiency_at(shards)

    def utilization(self, shards: int, offered_rps: float) -> float:
        return offered_rps / self.effective_rps(shards)

    def modeled_p99_s(
        self, shards: int, offered_rps: float
    ) -> float:
        """Tail latency heuristic: the service-time p99 inflated by the
        queueing factor ``1 / (1 - rho)``; infinite at saturation."""
        rho = self.utilization(shards, offered_rps)
        if rho >= 1.0:
            return math.inf
        return self.service_p99_s / (1.0 - rho)

    # ------------------------------------------------------------ planning

    def plan(
        self,
        offered_rps: float,
        target_p99_s: float,
        *,
        cost: Optional[ShardCostModel] = None,
        max_shards: int = DEFAULT_MAX_SHARDS,
    ) -> CapacityPlan:
        """The smallest shard count serving *offered_rps* with a
        modeled p99 within *target_p99_s* (and utilization below the
        model's cap), costed per hour and per million requests."""
        if offered_rps <= 0:
            raise ValidationError("offered_rps must be positive")
        if target_p99_s <= 0:
            raise ValidationError("target_p99_s must be positive")
        cost = cost or ShardCostModel()
        if target_p99_s < self.service_p99_s:
            return CapacityPlan(
                offered_rps=offered_rps,
                target_p99_s=target_p99_s,
                feasible=False,
                shards=None,
                utilization=None,
                modeled_p99_s=None,
                effective_rps=None,
                cost_per_hour=None,
                cost_per_million=None,
                reason=(
                    f"target p99 {target_p99_s:g}s is below the "
                    f"measured service-time p99 "
                    f"{self.service_p99_s:g}s; no shard count can "
                    "meet it"
                ),
            )
        for shards in range(1, max_shards + 1):
            rho = self.utilization(shards, offered_rps)
            if rho > self.max_utilization:
                continue
            p99 = self.modeled_p99_s(shards, offered_rps)
            if p99 <= target_p99_s:
                hourly = cost.cost_per_hour(shards)
                per_million = hourly / (offered_rps * 3600.0 / 1e6)
                return CapacityPlan(
                    offered_rps=offered_rps,
                    target_p99_s=target_p99_s,
                    feasible=True,
                    shards=shards,
                    utilization=rho,
                    modeled_p99_s=p99,
                    effective_rps=self.effective_rps(shards),
                    cost_per_hour=hourly,
                    cost_per_million=per_million,
                )
        return CapacityPlan(
            offered_rps=offered_rps,
            target_p99_s=target_p99_s,
            feasible=False,
            shards=None,
            utilization=None,
            modeled_p99_s=None,
            effective_rps=None,
            cost_per_hour=None,
            cost_per_million=None,
            reason=(
                f"no shard count up to {max_shards} meets p99 "
                f"{target_p99_s:g}s at {offered_rps:g} rps"
            ),
        )

    # ---------------------------------------------------------- construction

    @classmethod
    def from_metrics(
        cls,
        snapshot: Mapping[str, Any],
        *,
        num_shards: int = 1,
        **kwargs: Any,
    ) -> "CapacityModel":
        """Build from a :class:`~repro.serve.metrics.ServiceMetrics` (or
        cluster) snapshot: measured throughput split across the shards
        that produced it, latency p99 as the service-time tail."""
        throughput = float(snapshot.get("throughput_rps") or 0.0)
        latency = snapshot.get("latency_s") or {}
        p99 = float(latency.get("p99") or 0.0)
        if throughput <= 0 or p99 <= 0:
            raise ValidationError(
                "snapshot has no completed requests to model "
                "capacity from"
            )
        return cls(throughput / max(1, num_shards), p99, **kwargs)

    def to_json(self) -> Dict[str, Any]:
        return {
            "per_shard_rps": self.per_shard_rps,
            "service_p99_s": self.service_p99_s,
            "max_utilization": self.max_utilization,
            "efficiency": {
                str(count): value
                for count, value in self._efficiency.items()
            },
        }


def capacity_report(
    model: CapacityModel,
    *,
    offered_rps: Sequence[float],
    target_p99_s: float,
    cost: Optional[ShardCostModel] = None,
    max_shards: int = DEFAULT_MAX_SHARDS,
) -> Dict[str, Any]:
    """Plans over a load sweep, as one JSON-serializable block (the
    shape ``BENCH_scale.json`` embeds and the CLIs print)."""
    cost = cost or ShardCostModel()
    plans: List[Dict[str, Any]] = [
        model.plan(
            load, target_p99_s, cost=cost, max_shards=max_shards
        ).to_json()
        for load in offered_rps
    ]
    return {
        "model": model.to_json(),
        "cost": cost.to_json(),
        "target_p99_s": target_p99_s,
        "plans": plans,
    }


__all__ = [
    "CapacityModel",
    "CapacityPlan",
    "DEFAULT_MAX_SHARDS",
    "ShardCostModel",
    "capacity_report",
]
