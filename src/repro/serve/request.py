"""Request shape and admission errors of the evaluation service."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.api import request_digest
from repro.core.errors import StateError, ValidationError

#: Priority lanes, most urgent first.  Integer priorities are accepted
#: too (lower = more urgent) so callers can define finer lanes.
PRIORITY_LANES = {"high": 0, "normal": 1, "low": 2}


class AdmissionRejected(StateError):
    """The service refused a request; ``reason`` says why.

    Raised (not queued) so producers see backpressure immediately:
    ``"queue full"`` when the bounded queue is saturated, ``"draining"``
    / ``"stopped"`` during shutdown.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation request addressed to a registered workload.

    *priority* is a lane name (``"high"``/``"normal"``/``"low"``) or an
    int (lower = more urgent); *timeout_s* bounds the evaluation
    wall-clock inside the worker (retries included) via
    :class:`~repro.resilience.Deadline`.
    """

    workload: str
    config: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    impl: Optional[str] = None
    priority: Union[str, int] = "normal"
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValidationError("request needs a workload name")
        if isinstance(self.priority, str):
            if self.priority not in PRIORITY_LANES:
                raise ValidationError(
                    f"unknown priority lane {self.priority!r} "
                    f"(choose from {sorted(PRIORITY_LANES)} or an int)"
                )
        elif not isinstance(self.priority, int):
            raise ValidationError("priority must be a lane name or an int")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValidationError("timeout_s must be positive")

    @property
    def priority_rank(self) -> int:
        if isinstance(self.priority, str):
            return PRIORITY_LANES[self.priority]
        return int(self.priority)

    @property
    def digest(self) -> str:
        """Content address: cache key, dedup key and result digest."""
        return request_digest(
            self.workload, dict(self.config), self.seed, self.impl
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "config": dict(self.config),
            "seed": self.seed,
            "impl": self.impl,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "EvalRequest":
        known = {
            "workload", "config", "seed", "impl", "priority", "timeout_s"
        }
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown EvalRequest fields: {sorted(unknown)}"
            )
        return cls(**dict(payload))


def load_requests(text: str) -> List[EvalRequest]:
    """Parse a JSON array of request objects (the ``repro serve
    --requests`` file format)."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValidationError("request file must hold a JSON array")
    return [EvalRequest.from_json(item) for item in payload]
