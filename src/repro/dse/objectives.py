"""Design-point evaluation through the HLS estimator.

The DSE objectives are the classic latency/area pair (both minimized);
:class:`HLSEvaluator` runs the full HLS flow of
:func:`repro.hls.directives.synthesize` per configuration, with
memoization -- re-evaluating a design point an explorer revisits is free,
matching how real DSE frameworks cache synthesis results.

Two optional layers extend the memo table to production scale:

- an attached :class:`~repro.exec.ParallelEvaluator` fans
  :meth:`HLSEvaluator.evaluate_many` batches out over a process pool
  (synthesis is a pure function of the configuration, so parallel and
  serial runs are bit-identical);
- an attached :class:`~repro.exec.ResultCache` memoizes synthesis
  results *across* runner invocations and processes, keyed by the
  content digest of (kernel, library, configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.space import Configuration, DesignSpace
from repro.exec import ParallelEvaluator, ResultCache, config_digest
from repro.hls.directives import Directives, SynthesisResult, synthesize
from repro.hls.estimation import FPGAEstimate, ResourceLibrary
from repro.hls.kernels import LoopNest


@dataclass(frozen=True)
class DesignPoint:
    """An evaluated configuration."""

    config: Configuration
    objectives: Tuple[float, ...]
    synthesis: SynthesisResult

    @property
    def latency_s(self) -> float:
        return self.objectives[0]

    @property
    def area(self) -> float:
        return self.objectives[1]


def _directives_for(config: Configuration) -> Directives:
    return Directives(
        unroll=int(config["unroll"]),
        pipeline=bool(config["pipeline"]),
        array_partition=int(config["array_partition"]),
        mul_units=int(config["mul_units"]),
        add_units=int(config["add_units"]),
    )


def _synthesis_task(args: Tuple[LoopNest, Directives, ResourceLibrary]) -> Dict[str, Any]:
    """Worker-side synthesis of one design point (module-level: picklable)."""
    nest, directives, library = args
    return synthesis_to_record(synthesize(nest, directives, library))


def synthesis_to_record(result: SynthesisResult) -> Dict[str, Any]:
    """JSON-serializable form of a :class:`SynthesisResult` (cacheable)."""
    return {
        "kernel": result.kernel,
        "directives": {
            "unroll": result.directives.unroll,
            "pipeline": result.directives.pipeline,
            "array_partition": result.directives.array_partition,
            "mul_units": result.directives.mul_units,
            "add_units": result.directives.add_units,
        },
        "estimate": {
            "luts": result.estimate.luts,
            "ffs": result.estimate.ffs,
            "dsps": result.estimate.dsps,
            "clock_mhz": result.estimate.clock_mhz,
            "cycles": result.estimate.cycles,
        },
        "iteration_cycles": result.iteration_cycles,
        "initiation_interval": result.initiation_interval,
        "total_cycles": result.total_cycles,
    }


def synthesis_from_record(record: Dict[str, Any]) -> SynthesisResult:
    """Rebuild a :class:`SynthesisResult` from its cached record."""
    return SynthesisResult(
        kernel=record["kernel"],
        directives=Directives(**record["directives"]),
        estimate=FPGAEstimate(**record["estimate"]),
        iteration_cycles=int(record["iteration_cycles"]),
        initiation_interval=int(record["initiation_interval"]),
        total_cycles=int(record["total_cycles"]),
    )


class HLSEvaluator:
    """Maps configurations to (latency, area) objectives for one kernel."""

    def __init__(
        self,
        nest: LoopNest,
        space: DesignSpace,
        library: Optional[ResourceLibrary] = None,
        executor: Optional[ParallelEvaluator] = None,
        result_cache: Optional[ResultCache] = None,
    ) -> None:
        self.nest = nest
        self.space = space
        self.library = library or ResourceLibrary()
        self.executor = executor
        self.result_cache = result_cache
        self._cache: Dict[Tuple, DesignPoint] = {}
        self.evaluations = 0

    def _digest(self, config: Configuration) -> str:
        return config_digest(
            {"nest": self.nest, "library": self.library, "config": config}
        )

    def _point_from_record(
        self, config: Configuration, record: Dict[str, Any]
    ) -> DesignPoint:
        result = synthesis_from_record(record)
        return DesignPoint(
            config=dict(config),
            objectives=(result.latency_s, result.estimate.area_score),
            synthesis=result,
        )

    def evaluate(self, config: Configuration) -> DesignPoint:
        """Synthesize *config* (memoized)."""
        return self.evaluate_many([config])[0]

    def evaluate_many(
        self, configs: Sequence[Configuration]
    ) -> List[DesignPoint]:
        """Synthesize a batch of configurations, preserving order.

        Configurations already in the memo table are free; the rest are
        deduplicated and computed -- through the attached executor and
        content-addressed cache when present, serially otherwise.  The
        evaluation counters advance exactly as a serial `evaluate` loop
        would, so parallel runs report identical accounting.
        """
        keys = [self.space.key(c) for c in configs]
        missing: List[Tuple[Tuple, Configuration]] = []
        seen = set()
        for key, config in zip(keys, configs):
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            missing.append((key, config))

        if missing:
            tasks = [
                (self.nest, _directives_for(config), self.library)
                for _, config in missing
            ]
            if self.executor is not None:
                digests = [self._digest(config) for _, config in missing]
                records = self.executor.map(
                    _synthesis_task, tasks, keys=digests
                )
            elif self.result_cache is not None:
                records = [
                    self.result_cache.get_or_compute(
                        self._digest(config),
                        lambda t=task: _synthesis_task(t),
                    )
                    for (_, config), task in zip(missing, tasks)
                ]
            else:
                records = [_synthesis_task(task) for task in tasks]
            for (key, config), record in zip(missing, records):
                self._cache[key] = self._point_from_record(config, record)
                self.evaluations += 1
        return [self._cache[key] for key in keys]

    @property
    def unique_evaluations(self) -> int:
        return len(self._cache)

    def objectives_array(self, points) -> np.ndarray:
        """Stack the objective vectors of *points* into an (n, m) array."""
        return np.array([p.objectives for p in points], dtype=np.float64)
