"""Design-point evaluation through the HLS estimator.

The DSE objectives are the classic latency/area pair (both minimized);
:class:`HLSEvaluator` runs the full HLS flow of
:func:`repro.hls.directives.synthesize` per configuration, with
memoization -- re-evaluating a design point an explorer revisits is free,
matching how real DSE frameworks cache synthesis results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dse.space import Configuration, DesignSpace
from repro.hls.directives import Directives, SynthesisResult, synthesize
from repro.hls.estimation import ResourceLibrary
from repro.hls.kernels import LoopNest


@dataclass(frozen=True)
class DesignPoint:
    """An evaluated configuration."""

    config: Configuration
    objectives: Tuple[float, ...]
    synthesis: SynthesisResult

    @property
    def latency_s(self) -> float:
        return self.objectives[0]

    @property
    def area(self) -> float:
        return self.objectives[1]


class HLSEvaluator:
    """Maps configurations to (latency, area) objectives for one kernel."""

    def __init__(
        self,
        nest: LoopNest,
        space: DesignSpace,
        library: Optional[ResourceLibrary] = None,
    ) -> None:
        self.nest = nest
        self.space = space
        self.library = library or ResourceLibrary()
        self._cache: Dict[Tuple, DesignPoint] = {}
        self.evaluations = 0

    def evaluate(self, config: Configuration) -> DesignPoint:
        """Synthesize *config* (memoized)."""
        key = self.space.key(config)
        if key in self._cache:
            return self._cache[key]
        directives = Directives(
            unroll=int(config["unroll"]),
            pipeline=bool(config["pipeline"]),
            array_partition=int(config["array_partition"]),
            mul_units=int(config["mul_units"]),
            add_units=int(config["add_units"]),
        )
        result = synthesize(self.nest, directives, self.library)
        point = DesignPoint(
            config=dict(config),
            objectives=(result.latency_s, result.estimate.area_score),
            synthesis=result,
        )
        self._cache[key] = point
        self.evaluations += 1
        return point

    @property
    def unique_evaluations(self) -> int:
        return len(self._cache)

    def objectives_array(self, points) -> np.ndarray:
        """Stack the objective vectors of *points* into an (n, m) array."""
        return np.array([p.objectives for p in points], dtype=np.float64)
