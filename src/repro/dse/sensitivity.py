"""One-at-a-time parameter sensitivity analysis.

After (or instead of) a full exploration, designers ask *which knob
matters*: the sensitivity of each objective to each directive around a
base configuration.  :func:`parameter_sensitivity` sweeps one parameter
at a time through its full range, holding the others at the base point,
and reports the objective spans -- the "where to spend silicon" summary
the Sec. III toolchain aims to automate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dse.objectives import HLSEvaluator
from repro.dse.space import Configuration


@dataclass(frozen=True)
class SensitivityRow:
    """Objective spans when sweeping one parameter."""

    parameter: str
    latency_min_s: float
    latency_max_s: float
    area_min: float
    area_max: float

    @property
    def latency_span(self) -> float:
        """Max/min latency ratio over the sweep (1.0 = insensitive)."""
        if self.latency_min_s == 0:
            return float("inf")
        return self.latency_max_s / self.latency_min_s

    @property
    def area_span(self) -> float:
        if self.area_min == 0:
            return float("inf")
        return self.area_max / self.area_min


def parameter_sensitivity(
    evaluator: HLSEvaluator,
    base: Configuration,
) -> List[SensitivityRow]:
    """One-at-a-time sensitivity around *base*, most latency-sensitive
    parameter first."""
    evaluator.space.validate(base)
    rows = []
    for parameter in evaluator.space.parameters:
        latencies = []
        areas = []
        for value in parameter.values:
            config = dict(base)
            config[parameter.name] = value
            point = evaluator.evaluate(config)
            latencies.append(point.latency_s)
            areas.append(point.area)
        rows.append(
            SensitivityRow(
                parameter=parameter.name,
                latency_min_s=min(latencies),
                latency_max_s=max(latencies),
                area_min=min(areas),
                area_max=max(areas),
            )
        )
    rows.sort(key=lambda r: -r.latency_span)
    return rows


def most_sensitive_parameter(
    evaluator: HLSEvaluator, base: Configuration
) -> str:
    """Name of the parameter with the largest latency leverage."""
    return parameter_sensitivity(evaluator, base)[0].parameter
