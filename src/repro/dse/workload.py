"""DSE adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation runs a full exploration (explorer x budget) of
an HLS directive space and reports front quality at a fixed reference
point, so exploration campaigns are servable like any other cell."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.core.api import RunResult, register_workload
from repro.core.errors import ValidationError

#: Fixed hypervolume reference (latency_s, area); generous enough that
#: every front of the small spaces explored here dominates it, and
#: fixed so scores are comparable across requests.
_REFERENCE = (1.0, 1e6)


class DSEWorkload:
    """``dse``: one exploration run scored by front hypervolume."""

    name = "dse"

    def space(self) -> Dict[str, tuple]:
        return {
            "explorer": ("random", "annealing", "exhaustive"),
            "budget": (8, 16, 32, 64),
            "kernel": ("gemm", "dot", "fir8", "gather"),
            "size": (32, 64, 128),
            "max_unroll": (4, 8, 16),
            "max_units": (4, 8, 16),
        }

    def _explorer(self, name: str):
        from repro.dse.explorer import (
            ExhaustiveExplorer,
            RandomExplorer,
            SimulatedAnnealingExplorer,
        )

        explorers = {
            "random": RandomExplorer,
            "annealing": SimulatedAnnealingExplorer,
            "exhaustive": ExhaustiveExplorer,
        }
        if name not in explorers:
            raise ValidationError(
                f"unknown explorer {name!r} (choose from "
                f"{sorted(explorers)})"
            )
        return explorers[name]()

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.dse.runner import DSERunner
        from repro.dse.space import hls_directive_space
        from repro.hls.kernels import make_kernel

        if impl not in (None, "scalar", "numpy"):
            raise ValidationError(
                f"dse supports impl=None|'scalar'|'numpy', got {impl!r}"
            )
        cfg = dict(config)
        runner = DSERunner(
            make_kernel(
                str(cfg.get("kernel", "gemm")), size=int(cfg.get("size", 32))
            ),
            space=hls_directive_space(
                max_unroll=int(cfg.get("max_unroll", 4)),
                max_partition=int(cfg.get("max_partition", 4)),
                max_units=int(cfg.get("max_units", 4)),
            ),
        )
        explorer = self._explorer(str(cfg.get("explorer", "random")))
        start = time.perf_counter()
        result = runner.run(explorer, int(cfg.get("budget", 8)), seed=seed)
        wall = time.perf_counter() - start
        return result.to_run_result(
            workload=self.name, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall, reference=_REFERENCE,
        )


register_workload(DSEWorkload())
