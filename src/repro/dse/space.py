"""Discrete design spaces.

A :class:`DesignSpace` is an ordered set of named :class:`Parameter`
value lists; configurations are dicts.  The space knows how to
enumerate, sample, and mutate configurations -- the primitives all four
explorers build on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.rng import SeedLike, make_rng

Configuration = Dict[str, object]


@dataclass(frozen=True)
class Parameter:
    """One discrete design parameter."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        return len(self.values)


class DesignSpace:
    """An ordered collection of parameters."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        self.parameters: List[Parameter] = list(parameters)

    @property
    def size(self) -> int:
        """Total number of configurations."""
        size = 1
        for p in self.parameters:
            size *= p.cardinality
        return size

    def enumerate(self) -> Iterator[Configuration]:
        """All configurations, lexicographic in parameter order."""
        names = [p.name for p in self.parameters]
        for combo in itertools.product(*(p.values for p in self.parameters)):
            yield dict(zip(names, combo))

    def sample(self, rng_seed: SeedLike = None) -> Configuration:
        """One uniformly random configuration."""
        rng = make_rng(rng_seed)
        return {
            p.name: p.values[rng.integers(p.cardinality)]
            for p in self.parameters
        }

    def mutate(
        self, config: Configuration, rng_seed: SeedLike = None
    ) -> Configuration:
        """Neighbor of *config*: one parameter moved to an adjacent value
        (the move operator of simulated annealing)."""
        self.validate(config)
        rng = make_rng(rng_seed)
        mutated = dict(config)
        param = self.parameters[rng.integers(len(self.parameters))]
        idx = param.values.index(config[param.name])
        if param.cardinality == 1:
            return mutated
        if idx == 0:
            idx = 1
        elif idx == param.cardinality - 1:
            idx -= 1
        else:
            idx += 1 if rng.random() < 0.5 else -1
        mutated[param.name] = param.values[idx]
        return mutated

    def crossover(
        self,
        parent_a: Configuration,
        parent_b: Configuration,
        rng_seed: SeedLike = None,
    ) -> Configuration:
        """Uniform crossover (the NSGA-II recombination operator)."""
        self.validate(parent_a)
        self.validate(parent_b)
        rng = make_rng(rng_seed)
        return {
            p.name: (parent_a if rng.random() < 0.5 else parent_b)[p.name]
            for p in self.parameters
        }

    def validate(self, config: Configuration) -> None:
        """Raise if *config* is not a point of this space."""
        for p in self.parameters:
            if p.name not in config:
                raise ValueError(f"missing parameter {p.name!r}")
            if config[p.name] not in p.values:
                raise ValueError(
                    f"value {config[p.name]!r} invalid for {p.name!r}"
                )

    def key(self, config: Configuration) -> Tuple:
        """Hashable identity of a configuration."""
        self.validate(config)
        return tuple(config[p.name] for p in self.parameters)


def hls_directive_space(
    max_unroll: int = 16,
    max_partition: int = 8,
    max_units: int = 16,
) -> DesignSpace:
    """The standard HLS directive space the Sec. III benches explore."""

    def powers(limit: int) -> Tuple[int, ...]:
        vals = []
        v = 1
        while v <= limit:
            vals.append(v)
            v *= 2
        return tuple(vals)

    return DesignSpace(
        [
            Parameter("unroll", powers(max_unroll)),
            Parameter("pipeline", (False, True)),
            Parameter("array_partition", powers(max_partition)),
            Parameter("mul_units", powers(max_units)),
            Parameter("add_units", powers(max_units)),
        ]
    )
