"""Design Space Exploration engine (paper Sec. III).

The toolchain goal: "allow designers to explore automatically the wide
space of the architectural parameters, adopt optimization strategies at a
high level of abstraction through performance and resource estimations."

- :mod:`repro.dse.space`      -- discrete parameter spaces over HLS
  directives;
- :mod:`repro.dse.objectives` -- design-point evaluation (latency / area /
  DSPs) through the HLS estimator;
- :mod:`repro.dse.explorer`   -- exhaustive, random, simulated-annealing
  and NSGA-II explorers with a common interface;
- :mod:`repro.dse.runner`     -- exploration orchestration and Pareto
  extraction, with hypervolume-based explorer comparison.
"""

from repro.dse.space import DesignSpace, Parameter
from repro.dse.objectives import DesignPoint, HLSEvaluator
from repro.dse.explorer import (
    ExhaustiveExplorer,
    NSGA2Explorer,
    RandomExplorer,
    SimulatedAnnealingExplorer,
)
from repro.dse.runner import DSERunner, ExplorationResult
from repro.dse.sensitivity import parameter_sensitivity

__all__ = [
    "DesignSpace",
    "Parameter",
    "DesignPoint",
    "HLSEvaluator",
    "ExhaustiveExplorer",
    "RandomExplorer",
    "SimulatedAnnealingExplorer",
    "NSGA2Explorer",
    "DSERunner",
    "ExplorationResult",
    "parameter_sensitivity",
]
