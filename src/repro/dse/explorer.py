"""DSE exploration strategies.

Four explorers with a common ``explore(evaluator, budget)`` interface:

- :class:`ExhaustiveExplorer` -- ground truth for small spaces;
- :class:`RandomExplorer` -- the sampling baseline;
- :class:`SimulatedAnnealingExplorer` -- scalarized annealing with
  restarts (good anytime behaviour on a single trade-off direction);
- :class:`NSGA2Explorer` -- multi-objective genetic search with
  non-dominated sorting and crowding-distance selection, the
  front-approximation workhorse.

All objectives are minimized.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.pareto import crowding_distance, pareto_indices
from repro.core.rng import SeedLike, make_rng
from repro.dse.objectives import DesignPoint, HLSEvaluator


class ExhaustiveExplorer:
    """Evaluate every configuration (budget permitting)."""

    name = "exhaustive"

    def explore(
        self, evaluator: HLSEvaluator, budget: int, seed: SeedLike = None
    ) -> List[DesignPoint]:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        configs = []
        for config in evaluator.space.enumerate():
            if len(configs) >= budget:
                break
            configs.append(config)
        return evaluator.evaluate_many(configs)


class RandomExplorer:
    """Uniform random sampling without replacement (up to budget)."""

    name = "random"

    def explore(
        self, evaluator: HLSEvaluator, budget: int, seed: SeedLike = None
    ) -> List[DesignPoint]:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = make_rng(seed)
        seen = set()
        configs = []
        attempts = 0
        while len(configs) < budget and attempts < budget * 20:
            config = evaluator.space.sample(rng)
            key = evaluator.space.key(config)
            attempts += 1
            if key in seen:
                continue
            seen.add(key)
            configs.append(config)
        # Sampling never consults evaluation results, so the whole draw
        # can be batched into one (possibly parallel) evaluation.
        return evaluator.evaluate_many(configs)


class SimulatedAnnealingExplorer:
    """Scalarized simulated annealing with geometric cooling.

    The scalarization is a weighted log-sum of the normalized objectives
    (log because latency and area span decades); several restarts with
    rotated weights cover different front regions.
    """

    name = "annealing"

    def __init__(
        self,
        restarts: int = 4,
        initial_temperature: float = 1.0,
        cooling: float = 0.92,
    ) -> None:
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        self.restarts = restarts
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    @staticmethod
    def _scalarize(point: DesignPoint, weights: np.ndarray) -> float:
        logs = np.log10(np.maximum(point.objectives, 1e-30))
        return float(np.dot(weights, logs))

    def explore(
        self, evaluator: HLSEvaluator, budget: int, seed: SeedLike = None
    ) -> List[DesignPoint]:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = make_rng(seed)
        per_restart = max(1, budget // self.restarts)
        all_points: List[DesignPoint] = []
        for restart in range(self.restarts):
            alpha = (restart + 0.5) / self.restarts
            weights = np.array([alpha, 1.0 - alpha])
            current = evaluator.evaluate(evaluator.space.sample(rng))
            all_points.append(current)
            current_cost = self._scalarize(current, weights)
            temperature = self.initial_temperature
            for _ in range(per_restart - 1):
                neighbor_cfg = evaluator.space.mutate(current.config, rng)
                neighbor = evaluator.evaluate(neighbor_cfg)
                all_points.append(neighbor)
                cost = self._scalarize(neighbor, weights)
                accept = cost < current_cost or rng.random() < math.exp(
                    -(cost - current_cost) / max(temperature, 1e-9)
                )
                if accept:
                    current, current_cost = neighbor, cost
                temperature *= self.cooling
        return all_points


class NSGA2Explorer:
    """NSGA-II: non-dominated sorting + crowding-distance selection."""

    name = "nsga2"

    def __init__(self, population: int = 24, mutation_rate: float = 0.3) -> None:
        if population < 4:
            raise ValueError("population must be >= 4")
        if not 0 <= mutation_rate <= 1:
            raise ValueError("mutation_rate must be in [0, 1]")
        self.population = population
        self.mutation_rate = mutation_rate

    def _rank(self, points: List[DesignPoint]) -> List[int]:
        """Non-dominated front index per point (0 = best front)."""
        objs = np.array([p.objectives for p in points])
        remaining = list(range(len(points)))
        ranks = [0] * len(points)
        front = 0
        while remaining:
            sub = objs[remaining]
            idx = pareto_indices(sub)
            chosen = [remaining[i] for i in idx]
            for i in chosen:
                ranks[i] = front
            remaining = [i for i in remaining if i not in set(chosen)]
            front += 1
        return ranks

    def _select(self, points: List[DesignPoint]) -> List[DesignPoint]:
        ranks = self._rank(points)
        objs = np.array([p.objectives for p in points])
        order = sorted(range(len(points)), key=lambda i: ranks[i])
        selected: List[int] = []
        current_front: List[int] = []
        current_rank = 0
        for i in order + [None]:
            end = i is None or ranks[i] != current_rank
            if end:
                if len(selected) + len(current_front) <= self.population:
                    selected.extend(current_front)
                else:
                    crowd = crowding_distance(objs[current_front])
                    by_crowd = sorted(
                        range(len(current_front)),
                        key=lambda j: -crowd[j],
                    )
                    need = self.population - len(selected)
                    selected.extend(
                        current_front[j] for j in by_crowd[:need]
                    )
                if i is None or len(selected) >= self.population:
                    break
                current_front = [i]
                current_rank = ranks[i]
            else:
                current_front.append(i)
        return [points[i] for i in selected[: self.population]]

    def explore(
        self, evaluator: HLSEvaluator, budget: int, seed: SeedLike = None
    ) -> List[DesignPoint]:
        if budget < self.population:
            raise ValueError("budget must cover at least one population")
        rng = make_rng(seed)
        population = evaluator.evaluate_many(
            [evaluator.space.sample(rng) for _ in range(self.population)]
        )
        all_points = list(population)
        evaluations = len(population)
        while evaluations < budget:
            # Offspring configurations depend only on the parents and
            # the RNG stream, never on the offspring's own objectives,
            # so one generation evaluates as a single batch (the RNG
            # call sequence is identical to the per-child loop).
            child_cfgs = []
            while (
                len(child_cfgs) < self.population
                and evaluations + len(child_cfgs) < budget
            ):
                a, b = rng.choice(len(population), size=2, replace=False)
                child_cfg = evaluator.space.crossover(
                    population[a].config, population[b].config, rng
                )
                if rng.random() < self.mutation_rate:
                    child_cfg = evaluator.space.mutate(child_cfg, rng)
                child_cfgs.append(child_cfg)
            offspring = evaluator.evaluate_many(child_cfgs)
            evaluations += len(offspring)
            all_points.extend(offspring)
            population = self._select(population + offspring)
        return all_points


def best_tradeoff(points: List[DesignPoint]) -> DesignPoint:
    """Knee-point heuristic: the non-dominated point minimizing the
    normalized log-objective sum."""
    if not points:
        raise ValueError("no points to choose from")
    objs = np.array([p.objectives for p in points])
    nd = pareto_indices(objs)
    candidates = [points[i] for i in nd]
    logs = np.log10(np.maximum(objs[nd], 1e-30))
    norm = (logs - logs.min(axis=0)) / np.maximum(
        logs.max(axis=0) - logs.min(axis=0), 1e-12
    )
    return candidates[int(np.argmin(norm.sum(axis=1)))]
