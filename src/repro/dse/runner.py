"""Exploration orchestration and explorer comparison.

:class:`DSERunner` wires a kernel, a design space and an explorer, runs
the exploration and extracts the Pareto front; ``compare`` scores several
explorers at equal budget by the 2-D hypervolume of their fronts against
a shared reference -- the standard way to compare front-approximation
quality (larger is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import ValidationError
from repro.core.pareto import hypervolume_2d, pareto_indices
from repro.core.rng import SeedLike
from repro.dse.objectives import DesignPoint, HLSEvaluator
from repro.dse.space import DesignSpace, hls_directive_space
from repro.exec import make_evaluator
from repro.exec.parallel import CacheLike, EvaluatorLike
from repro.hls.estimation import ResourceLibrary
from repro.hls.kernels import LoopNest


@dataclass
class ExplorationResult:
    """Outcome of one exploration run.

    *summary* is set on results rebuilt from the interchange form
    (:meth:`from_run_result`): the point lists are gone, but the scored
    metrics round-trip byte-identically through :meth:`to_run_result`.
    """

    explorer_name: str
    evaluated: List[DesignPoint]
    front: List[DesignPoint]
    unique_evaluations: int
    summary: Optional[Dict[str, float]] = None

    def hypervolume(self, reference: Sequence[float]) -> float:
        objs = np.array([p.objectives for p in self.front])
        return hypervolume_2d(objs, reference)

    @property
    def best_latency(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.latency_s)

    @property
    def best_area(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.area)

    def to_run_result(
        self,
        *,
        workload: str = "dse",
        config=None,
        seed=None,
        impl=None,
        wall_time_s: float = 0.0,
        reference: Sequence[float] = (1.0, 1e6),
    ):
        """This exploration outcome in the unified
        :class:`~repro.core.api.RunResult` shape, scored against a fixed
        hypervolume *reference* so results are comparable across runs."""
        from repro.core.api import build_run_result

        if self.summary is not None:
            metrics = dict(self.summary)
        else:
            metrics = {
                "explorer": self.explorer_name,
                "hypervolume": self.hypervolume(reference),
                "front_size": len(self.front),
                "evaluations": len(self.evaluated),
                "unique_evaluations": self.unique_evaluations,
                "best_latency_s": self.best_latency.latency_s,
                "best_area": self.best_area.area,
            }
        return build_run_result(
            workload, metrics, config=config, seed=seed, impl=impl,
            wall_time_s=wall_time_s,
        )

    @classmethod
    def from_run_result(cls, result) -> "ExplorationResult":
        """Inverse of :meth:`to_run_result` for the scored summary: the
        design-point lists do not ride through the interchange shape,
        so the rebuilt result carries them empty and keeps the metrics
        in :attr:`summary`."""
        metrics = dict(result.metrics)
        return cls(
            explorer_name=str(metrics.get("explorer", result.workload)),
            evaluated=[],
            front=[],
            unique_evaluations=int(metrics.get("unique_evaluations", 0)),
            summary=metrics,
        )


class DSERunner:
    """Run explorations of one kernel's directive space."""

    def __init__(
        self,
        nest: LoopNest,
        space: Optional[DesignSpace] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> None:
        self.nest = nest
        self.space = space or hls_directive_space()
        self.library = library or ResourceLibrary()

    def run(
        self,
        explorer,
        budget: int,
        seed: SeedLike = 0,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
    ) -> ExplorationResult:
        """One exploration with a fresh evaluator (fair caching).

        *parallel* fans the explorer's objective evaluations out over a
        :class:`~repro.exec.ParallelEvaluator` (worker count, ``True``
        for CPU count, or a ready-made engine); *cache* memoizes
        synthesis results across runs through a content-addressed
        :class:`~repro.exec.ResultCache` (instance or path).  Synthesis
        is a pure function of the configuration and explorer RNG
        streams never depend on execution order, so serial and parallel
        runs produce bit-identical results at a fixed seed.

        A thin wrapper: the exploration is a single-node
        :func:`repro.campaign.dse_run_graph` executed by
        :class:`~repro.campaign.GraphRunner`, so it composes into
        larger campaign graphs unchanged.
        """
        from repro.campaign import GraphRunner, dse_run_graph

        graph = dse_run_graph(self, explorer, budget, seed, parallel, cache)
        runner = GraphRunner(observe=False)
        return runner.run(graph).value("explore")

    def _explore(
        self,
        explorer,
        budget: int,
        seed: SeedLike,
        parallel: EvaluatorLike,
        cache: CacheLike,
    ) -> ExplorationResult:
        """The exploration body :meth:`run`'s graph node executes."""
        from repro.obs.ledger import get_ledger

        ledger = get_ledger()
        ledger.event(
            "run.started", kind="dse",
            explorer=explorer.name, budget=budget,
        )
        executor = make_evaluator(parallel, cache)
        evaluator = HLSEvaluator(
            self.nest, self.space, self.library, executor=executor
        )
        points = explorer.explore(evaluator, budget, seed=seed)
        objs = np.array([p.objectives for p in points])
        front = [points[i] for i in pareto_indices(objs)]
        # Deduplicate identical configurations on the front.
        unique = {}
        for p in front:
            unique[self.space.key(p.config)] = p
        front = sorted(unique.values(), key=lambda p: p.latency_s)
        ledger.event(
            "run.finished", kind="dse",
            explorer=explorer.name,
            evaluations=len(points), front_size=len(front),
        )
        return ExplorationResult(
            explorer_name=explorer.name,
            evaluated=points,
            front=front,
            unique_evaluations=evaluator.unique_evaluations,
        )

    def compare(
        self,
        explorers: Sequence,
        budget: int,
        seed: SeedLike = 0,
        policy=None,
        checkpoint=None,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
        resilience=None,
    ) -> Dict[str, Dict[str, float]]:
        """Score *explorers* at equal *budget* by front hypervolume.

        The reference point is 10% beyond the worst objective values seen
        across all runs, so every front dominates it.

        Each explorer's score records its evaluation budget accounting
        (``evaluations`` actually spent, ``unique_evaluations`` distinct
        design points) and its measured ``wall_time_s``, so explorer
        speedups under ``parallel=``/``cache=`` (forwarded to
        :meth:`run`) are directly comparable instead of anecdotal.

        The comparison degrades gracefully: an explorer whose run fails
        is recorded with an ``{"error": ...}`` entry instead of aborting
        the whole study, transient faults are retried under the backoff
        of *resilience* (a :class:`~repro.resilience.ResiliencePolicy`;
        ``policy=BackoffPolicy(...)`` is the deprecated spelling), and a
        *checkpoint* (:class:`~repro.resilience.CheckpointStore`) lets
        an interrupted comparison resume with completed explorers'
        scores intact.

        Checkpointed scores are computed against that run's own
        reference point; mixing resumed and fresh scores is therefore
        only meaningful when the evaluated kernels are deterministic
        (they are, for the built-in evaluator at a fixed seed).

        A thin wrapper: the fresh explorers run as a
        :func:`repro.campaign.dse_compare_graph` whose ``scores``
        reduction reproduces the shared-reference scoring.
        """
        from repro.campaign import GraphRunner, dse_compare_graph
        from repro.resilience import BackoffPolicy, coerce_resilience

        resolved = coerce_resilience(
            resilience, policy, caller="DSERunner.compare"
        )
        backoff = (
            resolved.backoff
            if resolved is not None
            else BackoffPolicy(max_attempts=1)
        )

        resumed: Dict[str, Dict[str, float]] = {}
        fresh: List = []
        for explorer in explorers:
            key = f"{explorer.name}|budget={budget}|seed={seed}"
            if checkpoint is not None and key in checkpoint:
                resumed[explorer.name] = dict(checkpoint.get(key))
                continue
            fresh.append(explorer)

        scores: Dict[str, Dict[str, float]] = dict(resumed)
        computed: Dict[str, Dict[str, float]] = {}
        if fresh:
            graph = dse_compare_graph(
                self, fresh, budget, seed, backoff, parallel, cache
            )
            computed = GraphRunner(observe=False).run(graph).value("scores")
        elif not scores:
            raise ValidationError("compare needs at least one explorer")
        for name, score in computed.items():
            scores[name] = score
            if checkpoint is not None and "error" not in score:
                key = f"{name}|budget={budget}|seed={seed}"
                checkpoint.save(key, score)
                from repro.obs.ledger import get_ledger

                get_ledger().event("checkpoint.saved", cell=key)
        if checkpoint is not None:
            checkpoint.flush()
        return scores
