"""Exploration orchestration and explorer comparison.

:class:`DSERunner` wires a kernel, a design space and an explorer, runs
the exploration and extracts the Pareto front; ``compare`` scores several
explorers at equal budget by the 2-D hypervolume of their fronts against
a shared reference -- the standard way to compare front-approximation
quality (larger is better).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import TransientFault, ValidationError
from repro.core.pareto import hypervolume_2d, pareto_indices
from repro.core.rng import SeedLike
from repro.dse.objectives import DesignPoint, HLSEvaluator
from repro.dse.space import DesignSpace, hls_directive_space
from repro.exec import make_evaluator
from repro.exec.parallel import CacheLike, EvaluatorLike
from repro.hls.estimation import ResourceLibrary
from repro.hls.kernels import LoopNest


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    explorer_name: str
    evaluated: List[DesignPoint]
    front: List[DesignPoint]
    unique_evaluations: int

    def hypervolume(self, reference: Sequence[float]) -> float:
        objs = np.array([p.objectives for p in self.front])
        return hypervolume_2d(objs, reference)

    @property
    def best_latency(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.latency_s)

    @property
    def best_area(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.area)

    def to_run_result(
        self,
        *,
        workload: str = "dse",
        config=None,
        seed=None,
        impl=None,
        wall_time_s: float = 0.0,
        reference: Sequence[float] = (1.0, 1e6),
    ):
        """This exploration outcome in the unified
        :class:`~repro.core.api.RunResult` shape, scored against a fixed
        hypervolume *reference* so results are comparable across runs."""
        from repro.core.api import build_run_result

        metrics = {
            "explorer": self.explorer_name,
            "hypervolume": self.hypervolume(reference),
            "front_size": len(self.front),
            "evaluations": len(self.evaluated),
            "unique_evaluations": self.unique_evaluations,
            "best_latency_s": self.best_latency.latency_s,
            "best_area": self.best_area.area,
        }
        return build_run_result(
            workload, metrics, config=config, seed=seed, impl=impl,
            wall_time_s=wall_time_s,
        )


class DSERunner:
    """Run explorations of one kernel's directive space."""

    def __init__(
        self,
        nest: LoopNest,
        space: Optional[DesignSpace] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> None:
        self.nest = nest
        self.space = space or hls_directive_space()
        self.library = library or ResourceLibrary()

    def run(
        self,
        explorer,
        budget: int,
        seed: SeedLike = 0,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
    ) -> ExplorationResult:
        """One exploration with a fresh evaluator (fair caching).

        *parallel* fans the explorer's objective evaluations out over a
        :class:`~repro.exec.ParallelEvaluator` (worker count, ``True``
        for CPU count, or a ready-made engine); *cache* memoizes
        synthesis results across runs through a content-addressed
        :class:`~repro.exec.ResultCache` (instance or path).  Synthesis
        is a pure function of the configuration and explorer RNG
        streams never depend on execution order, so serial and parallel
        runs produce bit-identical results at a fixed seed.
        """
        from repro.obs.ledger import get_ledger

        ledger = get_ledger()
        ledger.event(
            "run.started", kind="dse",
            explorer=explorer.name, budget=budget,
        )
        executor = make_evaluator(parallel, cache)
        evaluator = HLSEvaluator(
            self.nest, self.space, self.library, executor=executor
        )
        points = explorer.explore(evaluator, budget, seed=seed)
        objs = np.array([p.objectives for p in points])
        front = [points[i] for i in pareto_indices(objs)]
        # Deduplicate identical configurations on the front.
        unique = {}
        for p in front:
            unique[self.space.key(p.config)] = p
        front = sorted(unique.values(), key=lambda p: p.latency_s)
        ledger.event(
            "run.finished", kind="dse",
            explorer=explorer.name,
            evaluations=len(points), front_size=len(front),
        )
        return ExplorationResult(
            explorer_name=explorer.name,
            evaluated=points,
            front=front,
            unique_evaluations=evaluator.unique_evaluations,
        )

    def compare(
        self,
        explorers: Sequence,
        budget: int,
        seed: SeedLike = 0,
        policy=None,
        checkpoint=None,
        parallel: EvaluatorLike = None,
        cache: CacheLike = None,
    ) -> Dict[str, Dict[str, float]]:
        """Score *explorers* at equal *budget* by front hypervolume.

        The reference point is 10% beyond the worst objective values seen
        across all runs, so every front dominates it.

        Each explorer's score records its evaluation budget accounting
        (``evaluations`` actually spent, ``unique_evaluations`` distinct
        design points) and its measured ``wall_time_s``, so explorer
        speedups under ``parallel=``/``cache=`` (forwarded to
        :meth:`run`) are directly comparable instead of anecdotal.

        The comparison degrades gracefully: an explorer whose run fails
        is recorded with an ``{"error": ...}`` entry instead of aborting
        the whole study, transient faults are retried under *policy*
        (a :class:`~repro.resilience.BackoffPolicy`), and a *checkpoint*
        (:class:`~repro.resilience.CheckpointStore`) lets an interrupted
        comparison resume with completed explorers' scores intact.

        Checkpointed scores are computed against that run's own
        reference point; mixing resumed and fresh scores is therefore
        only meaningful when the evaluated kernels are deterministic
        (they are, for the built-in evaluator at a fixed seed).
        """
        from repro.resilience import BackoffPolicy, resilient_run

        policy = policy or BackoffPolicy(max_attempts=1)
        results: Dict[str, ExplorationResult] = {}
        failures: Dict[str, str] = {}
        resumed: Dict[str, Dict[str, float]] = {}
        wall_times: Dict[str, float] = {}
        for explorer in explorers:
            key = f"{explorer.name}|budget={budget}|seed={seed}"
            if checkpoint is not None and key in checkpoint:
                resumed[explorer.name] = dict(checkpoint.get(key))
                continue
            start = time.perf_counter()
            try:
                outcome = resilient_run(
                    lambda e=explorer: self.run(
                        e, budget, seed=seed, parallel=parallel, cache=cache
                    ),
                    policy=policy,
                    retry_on=(TransientFault,),
                )
            except Exception as exc:
                failures[explorer.name] = str(exc)
            else:
                results[explorer.name] = outcome.value
                wall_times[explorer.name] = time.perf_counter() - start

        scores: Dict[str, Dict[str, float]] = dict(resumed)
        if results:
            all_objs = np.vstack(
                [
                    np.array([p.objectives for p in res.evaluated])
                    for res in results.values()
                ]
            )
            reference = all_objs.max(axis=0) * 1.1
            for name, res in results.items():
                scores[name] = {
                    "hypervolume": res.hypervolume(reference),
                    "front_size": float(len(res.front)),
                    "evaluations": float(len(res.evaluated)),
                    "unique_evaluations": float(res.unique_evaluations),
                    "wall_time_s": wall_times[name],
                    "best_latency_s": res.best_latency.latency_s,
                    "best_area": res.best_area.area,
                }
                if checkpoint is not None:
                    key = f"{name}|budget={budget}|seed={seed}"
                    checkpoint.save(key, scores[name])
                    from repro.obs.ledger import get_ledger

                    get_ledger().event("checkpoint.saved", cell=key)
        elif not scores and not failures:
            raise ValidationError("compare needs at least one explorer")
        for name, message in failures.items():
            scores[name] = {"error": message}
        if checkpoint is not None:
            checkpoint.flush()
        return scores
