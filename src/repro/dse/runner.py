"""Exploration orchestration and explorer comparison.

:class:`DSERunner` wires a kernel, a design space and an explorer, runs
the exploration and extracts the Pareto front; ``compare`` scores several
explorers at equal budget by the 2-D hypervolume of their fronts against
a shared reference -- the standard way to compare front-approximation
quality (larger is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pareto import hypervolume_2d, pareto_indices
from repro.core.rng import SeedLike
from repro.dse.objectives import DesignPoint, HLSEvaluator
from repro.dse.space import DesignSpace, hls_directive_space
from repro.hls.estimation import ResourceLibrary
from repro.hls.kernels import LoopNest


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    explorer_name: str
    evaluated: List[DesignPoint]
    front: List[DesignPoint]
    unique_evaluations: int

    def hypervolume(self, reference: Sequence[float]) -> float:
        objs = np.array([p.objectives for p in self.front])
        return hypervolume_2d(objs, reference)

    @property
    def best_latency(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.latency_s)

    @property
    def best_area(self) -> DesignPoint:
        return min(self.front, key=lambda p: p.area)


class DSERunner:
    """Run explorations of one kernel's directive space."""

    def __init__(
        self,
        nest: LoopNest,
        space: Optional[DesignSpace] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> None:
        self.nest = nest
        self.space = space or hls_directive_space()
        self.library = library or ResourceLibrary()

    def run(
        self, explorer, budget: int, seed: SeedLike = 0
    ) -> ExplorationResult:
        """One exploration with a fresh evaluator (fair caching)."""
        evaluator = HLSEvaluator(self.nest, self.space, self.library)
        points = explorer.explore(evaluator, budget, seed=seed)
        objs = np.array([p.objectives for p in points])
        front = [points[i] for i in pareto_indices(objs)]
        # Deduplicate identical configurations on the front.
        unique = {}
        for p in front:
            unique[self.space.key(p.config)] = p
        front = sorted(unique.values(), key=lambda p: p.latency_s)
        return ExplorationResult(
            explorer_name=explorer.name,
            evaluated=points,
            front=front,
            unique_evaluations=evaluator.unique_evaluations,
        )

    def compare(
        self,
        explorers: Sequence,
        budget: int,
        seed: SeedLike = 0,
    ) -> Dict[str, Dict[str, float]]:
        """Score *explorers* at equal *budget* by front hypervolume.

        The reference point is 10% beyond the worst objective values seen
        across all runs, so every front dominates it.
        """
        results = {
            explorer.name: self.run(explorer, budget, seed=seed)
            for explorer in explorers
        }
        all_objs = np.vstack(
            [
                np.array([p.objectives for p in res.evaluated])
                for res in results.values()
            ]
        )
        reference = all_objs.max(axis=0) * 1.1
        return {
            name: {
                "hypervolume": res.hypervolume(reference),
                "front_size": float(len(res.front)),
                "unique_evaluations": float(res.unique_evaluations),
                "best_latency_s": res.best_latency.latency_s,
                "best_area": res.best_area.area,
            }
            for name, res in results.items()
        }
