"""Quality metrics shared across the experiment suite.

PSNR is the figure of merit for the super-resolution experiments of Sec. V
(the paper claims "PSNR reduction lower than 10%"), classification accuracy
is used by the IMC accuracy-vs-nonideality studies of Sec. IV, and Dice is
used by the medical-segmentation pipeline of Sec. VI.
"""

from __future__ import annotations

import numpy as np


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two arrays of identical shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    return float(np.mean((reference - test) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for identical images. *peak* defaults to 8-bit image
    range; the super-resolution experiments pass 1.0 for normalized images.
    """
    err = mse(reference, test)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak**2 / err))


def classification_accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of matching entries between *labels* and *predictions*."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {predictions.shape}")
    if labels.size == 0:
        raise ValueError("empty label array")
    return float(np.mean(labels == predictions))


def dice_coefficient(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Dice similarity of two binary masks (1.0 for two empty masks).

    Used by the synthetic medical-segmentation workload of Sec. VI.
    """
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    if mask_a.shape != mask_b.shape:
        raise ValueError(f"shape mismatch: {mask_a.shape} vs {mask_b.shape}")
    total = mask_a.sum() + mask_b.sum()
    if total == 0:
        return 1.0
    return float(2.0 * np.logical_and(mask_a, mask_b).sum() / total)


def relative_change(baseline: float, value: float) -> float:
    """Signed relative change ``(value - baseline) / baseline``.

    The paper reports several results this way ("saves more than 80% of
    MACs", "training time reduction of up to 10%").
    """
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return (value - baseline) / baseline


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values; standard for speedups."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty array")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
