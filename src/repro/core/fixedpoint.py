"""Two's-complement fixed-point arithmetic.

The approximate-computing accelerators of Sec. V operate on 16-bit fixed
point data and weights (Table I reports "(16, 16)" bitwidths), and the IMC
stack quantizes DNN coefficients before mapping them onto memory arrays.
This module provides the shared quantization machinery: a format descriptor
(total bits, fractional bits, signedness) plus vectorized quantize /
dequantize helpers operating on numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A two's-complement fixed-point format ``Q(total_bits, frac_bits)``.

    ``total_bits`` counts the sign bit when ``signed`` is true.  The
    representable range is ``[min_value, max_value]`` with resolution
    ``lsb = 2**-frac_bits``.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ValueError("total_bits must be >= 1")
        if self.frac_bits < 0:
            raise ValueError("frac_bits must be >= 0")
        int_bits = self.total_bits - self.frac_bits - (1 if self.signed else 0)
        if int_bits < 0:
            raise ValueError(
                f"Q({self.total_bits},{self.frac_bits}) leaves no room for "
                "the sign bit"
            )

    @property
    def lsb(self) -> float:
        """Weight of the least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_int(self) -> int:
        """Smallest representable integer code."""
        if self.signed:
            return -(2 ** (self.total_bits - 1))
        return 0

    @property
    def max_int(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return 2 ** (self.total_bits - 1) - 1
        return 2**self.total_bits - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int * self.lsb

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int * self.lsb

    def describe(self) -> str:
        """Human-readable description used by reports."""
        kind = "signed" if self.signed else "unsigned"
        return (
            f"Q{self.total_bits}.{self.frac_bits} ({kind}, "
            f"range [{self.min_value:g}, {self.max_value:g}], lsb {self.lsb:g})"
        )


#: 16-bit format used throughout Sec. V experiments (data and weights).
Q16 = FixedPointFormat(total_bits=16, frac_bits=12)

#: 8-bit format used for IMC activation quantization experiments.
Q8 = FixedPointFormat(total_bits=8, frac_bits=6)


def quantize_int(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Quantize real *values* to integer codes in *fmt* (round-to-nearest,
    saturating)."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.rint(values / fmt.lsb)
    return np.clip(codes, fmt.min_int, fmt.max_int).astype(np.int64)


def dequantize_int(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Map integer *codes* back to real values."""
    return np.asarray(codes, dtype=np.float64) * fmt.lsb


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round-trip real *values* through *fmt* (quantize then dequantize).

    This is the "fake quantization" used to evaluate accuracy of the 16-bit
    models of Sec. V without carrying integer tensors through the code.
    """
    return dequantize_int(quantize_int(values, fmt), fmt)


def quantization_error(values: np.ndarray, fmt: FixedPointFormat) -> float:
    """Root-mean-square error introduced by quantizing *values* to *fmt*."""
    values = np.asarray(values, dtype=np.float64)
    err = values - quantize(values, fmt)
    return float(np.sqrt(np.mean(err**2)))


def required_frac_bits(max_abs_error: float) -> int:
    """Fractional bits needed so the rounding error is below
    *max_abs_error* (half an LSB bound)."""
    if max_abs_error <= 0:
        raise ValueError("max_abs_error must be positive")
    bits = 0
    while 2.0 ** (-bits) / 2.0 > max_abs_error:
        bits += 1
    return bits
