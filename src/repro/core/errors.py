"""Typed exception hierarchy for the reproduction suite.

Long campaigns and DSE sweeps (ROADMAP north-star: production-scale
runs that "handle as many scenarios as you can imagine") need errors a
harness can reason about: which failures are retryable, which carry
partial results worth checkpointing, and which identify a failed matrix
cell rather than a broken program.  This module is the single hierarchy
every thrust raises from:

- :class:`ReproError` -- root of everything raised deliberately here;
- :class:`ValidationError` -- bad arguments/configuration (subclasses
  :class:`ValueError`, so legacy ``except ValueError`` callers and tests
  keep working);
- :class:`SimulationTimeout` -- a cycle or wall-clock deadline expired;
  carries the partial statistics accumulated so far;
- :class:`DeviceFault` -- a permanent hardware fault (stuck cells, dead
  lane, dropped compute unit); retrying cannot help;
- :class:`TransientFault` -- a retryable fault (storage read hiccup,
  link glitch); :func:`repro.resilience.resilient_run` retries these
  under a bounded backoff policy;
- :class:`CampaignCellError` -- one (device, storage, phase) cell of a
  benchmarking-campaign matrix failed after retries; the campaign
  records it and continues instead of aborting the sweep;
- :class:`WorkerCrashError` -- a pool worker process died mid-batch
  (``BrokenProcessPool`` and friends); carries which tasks completed
  before the crash and which are suspect, so the evaluation engine can
  re-execute only the affected work and quarantine persistent
  poison tasks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class of all structured errors raised by the suite."""


class ValidationError(ReproError, ValueError):
    """Invalid argument or configuration value.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    sites (and the seed tests) are unaffected by the migration.
    """


class StateError(ReproError, RuntimeError):
    """An operation was issued against an object in the wrong state
    (e.g. an MVM on a crossbar that was never programmed)."""


class SimulationTimeout(ReproError, RuntimeError):
    """A simulation exceeded its cycle or wall-clock budget.

    Subclasses :class:`RuntimeError` for backward compatibility with
    callers that caught the old bare error.  *partial_stats* carries
    whatever statistics object the simulator had accumulated when the
    deadline fired, so a harness can checkpoint progress instead of
    losing the run.  *trace_id* ties the failure back to the request
    trace and run ledger; when tracing is active it is filled in
    automatically from the current trace context.
    """

    def __init__(
        self,
        message: str,
        *,
        partial_stats: Any = None,
        cycles: Optional[int] = None,
        elapsed_s: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.partial_stats = partial_stats
        self.cycles = cycles
        self.elapsed_s = elapsed_s
        if trace_id is None:
            trace_id = _current_trace_id()
        self.trace_id = trace_id


def _current_trace_id() -> Optional[str]:
    """The active trace id, if the observability layer is importable
    and tracing is on -- errors must never fail to construct because
    tracing is absent."""
    try:
        from repro.obs.trace import get_tracer
    except ImportError:  # pragma: no cover - obs is part of the suite
        return None
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    return tracer.current_trace_id()


class DeviceFault(ReproError, RuntimeError):
    """A permanent hardware fault: the component is gone for the rest
    of the run and work must remap to surviving resources."""

    def __init__(
        self,
        message: str,
        *,
        component: Optional[str] = None,
        fault_kind: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.component = component
        self.fault_kind = fault_kind


class TransientFault(DeviceFault):
    """A retryable fault -- the operation may succeed if reissued.

    The resilience harness retries these under a bounded
    :class:`~repro.resilience.retry.BackoffPolicy`; anything else
    propagates immediately.
    """


class WorkerCrashError(ReproError, RuntimeError):
    """A worker process died while evaluating a batch.

    Raised in place of the raw ``BrokenProcessPool`` RuntimeError so
    callers can distinguish infrastructure death from evaluation
    errors.  *completed* holds ``(index, value)`` pairs for the tasks
    that finished before the crash; *suspect_indices* are the task
    indices whose worker may have died under them (the crash cannot be
    attributed more precisely than per chunk); *quarantined* lists the
    content digests of tasks that crashed their worker
    ``quarantine_after`` times and will no longer be dispatched.
    Subclasses :class:`RuntimeError` so pre-typed ``except
    RuntimeError`` callers keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        completed: Any = (),
        suspect_indices: Any = (),
        quarantined: Any = (),
        trace_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.completed = tuple(completed)
        self.suspect_indices = tuple(suspect_indices)
        self.quarantined = tuple(quarantined)
        if trace_id is None:
            trace_id = _current_trace_id()
        self.trace_id = trace_id


class CampaignCellError(ReproError):
    """One cell of a campaign matrix failed after bounded retries.

    Carries the cell coordinates and the final error so the campaign
    report is complete: every (device, storage, phase) triple is either
    a result or one of these.
    """

    def __init__(
        self,
        message: str,
        *,
        device: str,
        storage: str,
        phase: str,
        attempts: int = 1,
        cause: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.device = device
        self.storage = storage
        self.phase = phase
        self.attempts = attempts
        self.cause = cause

    @property
    def key(self) -> str:
        """Stable cell identifier used by checkpoints and reports."""
        return f"{self.device}|{self.storage}|{self.phase}"

    def to_record(self) -> Dict[str, Any]:
        """JSON-serializable form for checkpoint/resume."""
        return {
            "error": str(self),
            "device": self.device,
            "storage": self.storage,
            "phase": self.phase,
            "attempts": self.attempts,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "CampaignCellError":
        return cls(
            record["error"],
            device=record["device"],
            storage=record["storage"],
            phase=record["phase"],
            attempts=int(record.get("attempts", 1)),
        )
