"""Unified Workload / RunResult calling convention for every subsystem.

The suite grew one simulator at a time, and each grew its own entry
point and result shape: the HLS flow returns ``SynthesisResult``, the
DSE runner ``ExplorationResult``, the IMC sweep plain dicts, SPARTA
``SimulationStats``, the DNA pipeline ``RetrievalReport``, the hetero
campaign ``CampaignCell``.  Simulator suites only compose when
workloads share a uniform request/result contract, so this module
defines that contract once:

- :class:`Workload` -- the protocol every subsystem adapter implements:
  ``name``, ``space()`` (the configuration vocabulary), and
  ``evaluate(config, *, seed, impl) -> RunResult``;
- :class:`RunResult` -- the one frozen result shape: a metrics dict
  plus seed, content digest, wall time, status and error info, with
  lossless JSON round-tripping and a *canonical* form whose bytes are
  identical for identical evaluations (volatile fields excluded);
- a process-wide **registry** (:func:`register_workload`,
  :func:`get_workload`, :func:`workload_names`) through which
  :mod:`repro.serve` and any future caller address all subsystems
  uniformly by name.

The ``parallel=`` / ``cache=`` contract
---------------------------------------

Every batch entry point in the suite -- ``DSERunner.run/compare``,
``repro.hetero.campaign.run_campaign`` / ``run_resilient_campaign``,
``repro.imc.sweep.crossbar_sweep`` / ``sweep_grid`` and
``repro.serve.EvaluationService`` -- accepts the same two optional
kwargs, coerced by :func:`repro.exec.make_evaluator`:

- ``parallel``: ``None``/``False`` for the serial legacy path, ``True``
  for a process pool at CPU count, an ``int`` worker count, or a
  ready-made :class:`~repro.exec.ParallelEvaluator`;
- ``cache``: a :class:`~repro.exec.ResultCache` instance or a path for
  a persistent one; results are memoized by content digest.

Callers guarantee cells are pure functions of their configuration and
derive any randomness from content (config/seed), never from execution
order, so serial, parallel and cache-warmed runs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.core.errors import ValidationError

_STATUSES = ("ok", "error")

#: RunResult fields excluded from the canonical form: they vary between
#: two otherwise-identical evaluations (timing noise, retry count, which
#: request instance produced them), so equality of evaluations is
#: defined without them.
VOLATILE_FIELDS = ("wall_time_s", "attempts", "trace_id")


@dataclass(frozen=True)
class RunResult:
    """The unified outcome of one workload evaluation.

    *metrics* holds JSON-scalar observables (floats, ints, bools,
    strings); *config_digest* is the content address of the request
    (see :func:`request_digest`), which doubles as the cache key under
    :mod:`repro.serve`.  *status* is ``"ok"`` or ``"error"``; error
    results carry ``error`` / ``error_type`` instead of metrics.

    Legacy attribute names from the pre-unification result shapes
    (``cycles``, ``rms_error``, ``total_seconds``, ...) resolve through
    the metrics dict with a :class:`DeprecationWarning`, so callers
    ported from ``SimulationStats`` and friends keep working while they
    migrate to ``result.metrics[...]``.
    """

    workload: str
    metrics: Dict[str, Any]
    seed: Optional[int]
    config_digest: str
    wall_time_s: float
    status: str = "ok"
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    #: The trace this evaluation ran under (when tracing was enabled);
    #: volatile, since the same evaluation can serve many traces.
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValidationError(
                f"status must be one of {_STATUSES}, got {self.status!r}"
            )
        if self.attempts < 1:
            raise ValidationError("attempts must be >= 1")
        if self.status == "error" and self.error is None:
            raise ValidationError("error results must carry a message")

    # ------------------------------------------------------------- status

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # ------------------------------------------------- legacy attribute shim

    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes not found normally.  Resolve
        # legacy result-shape attribute names through the metrics dict
        # so pre-unification callers keep working, loudly.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            metrics = object.__getattribute__(self, "metrics")
        except AttributeError:  # mid-unpickle, before fields exist
            raise AttributeError(name) from None
        if isinstance(metrics, dict) and name in metrics:
            warnings.warn(
                f"RunResult.{name} is a deprecated alias for "
                f"RunResult.metrics[{name!r}]; use the metrics dict",
                DeprecationWarning,
                stacklevel=2,
            )
            return metrics[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------ JSON forms

    def to_json(self) -> Dict[str, Any]:
        """Lossless JSON-serializable form (round-trips via
        :meth:`from_json`); also the value stored in
        :class:`~repro.exec.ResultCache` by :mod:`repro.serve`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "RunResult":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValidationError(
                f"unknown RunResult fields: {sorted(unknown)}"
            )
        return cls(**dict(payload))

    def canonical_json(self) -> str:
        """Deterministic identity encoding of this evaluation.

        Excludes :data:`VOLATILE_FIELDS` (wall time, retry attempts):
        two evaluations of the same (workload, config, seed, impl) are
        *the same result* and produce byte-identical canonical JSON --
        the property the served-vs-direct equivalence tests assert.
        """
        payload = {
            k: v
            for k, v in self.to_json().items()
            if k not in VOLATILE_FIELDS
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    def same_result(self, other: "RunResult") -> bool:
        """True when *other* is the same evaluation outcome (identity
        compares canonical forms, ignoring volatile fields)."""
        return self.canonical_json() == other.canonical_json()


def build_run_result(
    workload: str,
    metrics: Mapping[str, Any],
    *,
    config: Any,
    seed: Optional[int],
    impl: Optional[str] = None,
    wall_time_s: float = 0.0,
    status: str = "ok",
    error: Optional[str] = None,
    error_type: Optional[str] = None,
    attempts: int = 1,
    trace_id: Optional[str] = None,
) -> RunResult:
    """Assemble a :class:`RunResult`, deriving the content digest from
    (workload, config, seed, impl) via :func:`request_digest`."""
    return RunResult(
        workload=workload,
        metrics=dict(metrics),
        seed=seed,
        config_digest=request_digest(workload, config, seed, impl),
        wall_time_s=wall_time_s,
        status=status,
        error=error,
        error_type=error_type,
        attempts=attempts,
        trace_id=trace_id,
    )


def request_digest(
    workload: str,
    config: Any,
    seed: Optional[int],
    impl: Optional[str] = None,
) -> str:
    """Content address of one evaluation request.

    The digest covers the full request identity -- workload name,
    configuration, seed and kernel implementation -- so it is the cache
    key, the dedup key and the ``RunResult.config_digest`` all at once.
    """
    # Imported lazily: repro.exec pulls in the executor stack, which
    # this leaf module must not require at import time.
    from repro.exec.cache import config_digest

    return config_digest(
        {"workload": workload, "config": config, "seed": seed, "impl": impl}
    )


# ---------------------------------------------------------------- protocol


@runtime_checkable
class Workload(Protocol):
    """What every subsystem adapter exposes to uniform callers.

    ``space()`` maps parameter names to the tuple of example choices
    (first choice = the cheap default used by :func:`example_config`);
    ``evaluate`` must be a pure function of ``(config, seed, impl)``:
    same inputs produce a :class:`RunResult` with identical canonical
    JSON, regardless of process, thread or host.
    """

    name: str

    def space(self) -> Dict[str, tuple]:
        """Parameter vocabulary: name -> tuple of accepted choices."""
        ...

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        """Run one configuration to a :class:`RunResult`."""
        ...


def example_config(workload: Workload) -> Dict[str, Any]:
    """The cheapest valid configuration of *workload*: the first choice
    of every parameter in its :meth:`~Workload.space`."""
    return {name: choices[0] for name, choices in workload.space().items()}


# ---------------------------------------------------------------- registry

_REGISTRY: Dict[str, Workload] = {}
_DEFAULTS_LOADED = False

#: The seven built-in adapter modules; importing each registers its
#: workload(s).  Kept as module paths so registration stays lazy and
#: the core package never hard-imports the subsystems.
_DEFAULT_ADAPTER_MODULES = (
    "repro.hls.workload",
    "repro.dse.workload",
    "repro.imc.workload",
    "repro.sparta.workload",
    "repro.axc.workload",
    "repro.dna.workload",
    "repro.hetero.workload",
)


def register_workload(workload: Workload, *, replace: bool = False) -> None:
    """Add *workload* to the process-wide registry.

    Names are unique; re-registering an existing name requires
    ``replace=True`` so accidental collisions fail loudly.
    """
    name = getattr(workload, "name", None)
    if not name or not isinstance(name, str):
        raise ValidationError("workloads must carry a non-empty string name")
    if not replace and name in _REGISTRY and _REGISTRY[name] is not workload:
        raise ValidationError(f"workload {name!r} is already registered")
    _REGISTRY[name] = workload


def ensure_default_workloads() -> None:
    """Import (and thereby register) the built-in subsystem adapters.

    Idempotent and lazy: worker processes call this before resolving a
    workload by name, so registration survives pickling boundaries.
    """
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    import importlib

    for module in _DEFAULT_ADAPTER_MODULES:
        importlib.import_module(module)
    _DEFAULTS_LOADED = True


def get_workload(name: str) -> Workload:
    """The registered workload called *name* (defaults auto-loaded)."""
    ensure_default_workloads()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown workload {name!r} "
            f"(registered: {sorted(_REGISTRY)})"
        ) from None


def workload_names() -> List[str]:
    """Sorted names of every registered workload."""
    ensure_default_workloads()
    return sorted(_REGISTRY)


__all__ = [
    "RunResult",
    "VOLATILE_FIELDS",
    "Workload",
    "build_run_result",
    "ensure_default_workloads",
    "example_config",
    "get_workload",
    "register_workload",
    "request_digest",
    "workload_names",
]
