"""Soft-dependency compiled kernel tier (``impl="jit"``).

The profiler work of the kernel PRs left two inner loops where numpy
still gives back >2x to compiled code: the SPARTA per-cycle simulation
(pointer-chasing integer state machines vectorize poorly) and the banded
edit distance at small bands (band rows of a dozen cells drown in numpy
dispatch overhead).  This module is the *tier switch* for those kernels:

- :func:`numba_available` probes for numba exactly once per process;
- :func:`njit` is a drop-in ``numba.njit`` that degrades to an identity
  decorator when numba is absent, so every jit kernel in the repo is
  also a plain-Python function -- the equivalence tests execute the
  same code path with or without the compiler;
- :func:`resolve_impl` maps a requested ``impl="jit"`` to the declared
  fallback tier when numba is missing (recording a
  ``jit.fallback`` profiler counter so the degradation is visible in
  ``repro profile`` output instead of silent);
- :func:`timed_first_call` charges the one-time compilation cost of a
  lazily-compiled kernel to a ``jit.compile/<label>`` timer, keeping
  warm-path measurements honest.

numba is deliberately **not** in the runtime dependencies: every tier-1
surface must work from a bare ``numpy``-only install, and one CI bench
leg installs numba to prove the compiled tier while the others prove
the fallback.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional

from repro.perf import get_profiler

_NUMBA: Optional[Any] = None
_PROBED = False


def numba_available() -> bool:
    """Whether the optional numba compiler can be imported (probed once;
    a broken install counts as absent)."""
    global _NUMBA, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            import numba  # type: ignore

            _NUMBA = numba
        except Exception:  # pragma: no cover - depends on environment
            _NUMBA = None
    return _NUMBA is not None


def _force_numba_state(module: Optional[Any]) -> None:
    """Test hook: pin the probed numba module (``None`` simulates an
    install without it)."""
    global _NUMBA, _PROBED
    _NUMBA = module
    _PROBED = True


def njit(*args: Any, **kwargs: Any) -> Callable:
    """``numba.njit`` when numba is present, identity otherwise.

    Usable both bare (``@njit``) and parameterized (``@njit(cache=...)``)
    like the real decorator.  Without numba the decorated function runs
    as ordinary Python -- slow, but with identical semantics, which is
    what lets the test suite pin jit-kernel equivalence on numba-free
    installs.
    """
    if args and callable(args[0]) and len(args) == 1 and not kwargs:
        fn = args[0]
        if numba_available():
            return _NUMBA.njit(fn)
        return fn

    def decorate(fn: Callable) -> Callable:
        if numba_available():
            return _NUMBA.njit(*args, **kwargs)(fn)
        return fn

    return decorate


def resolve_impl(impl: str, fallback: str = "numpy") -> str:
    """The implementation tier to actually run for a requested *impl*.

    ``"jit"`` resolves to *fallback* when numba is absent (the graceful
    soft-dependency contract); every other tier passes through.  Each
    fallback increments the default profiler's ``jit.fallback`` counter
    so ``repro profile`` shows the degradation.
    """
    if impl != "jit" or numba_available():
        return impl
    get_profiler().count("jit.fallback")
    return fallback


def timed_first_call(label: str) -> Callable:
    """Decorator: record the wrapped function's *first* call duration
    under ``jit.compile/<label>``.

    Lazily-compiled numba kernels pay their compilation on the first
    dispatch; charging that call to a dedicated timer keeps it out of
    steady-state kernel measurements and makes compile cost a visible
    ``repro profile`` row.  After the first call the wrapper adds one
    boolean check.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if wrapper.__jit_warm__:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                wrapper.__jit_warm__ = True
                get_profiler().record(
                    f"jit.compile/{label}", time.perf_counter() - start
                )

        wrapper.__jit_warm__ = False
        return wrapper

    return decorate


__all__ = [
    "njit",
    "numba_available",
    "resolve_impl",
    "timed_first_call",
]
