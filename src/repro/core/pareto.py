"""Pareto-dominance utilities.

The DSE toolchain of Sec. III ranks candidate accelerator configurations by
multiple objectives (latency, LUTs, DSPs, energy).  All objectives are
*minimized*; callers negate maximization objectives before filtering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if point *a* Pareto-dominates *b* (all objectives <=, at least
    one strictly <).  Both are minimized."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("points must have the same number of objectives")
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_indices(points: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of *points* (shape ``(n, m)``).

    Duplicated non-dominated points are all kept.  O(n^2) pairwise filter,
    adequate for the DSE population sizes used here (<= a few thousand).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        dominated_by_i = np.all(points <= points[i], axis=1) & np.any(
            points < points[i], axis=1
        )
        if dominated_by_i.any():
            keep[i] = False
    return np.flatnonzero(keep)


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Non-dominated rows of *points*, sorted by the first objective."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    front = points[pareto_indices(points)]
    order = np.lexsort(front.T[::-1])
    return front[order]


def hypervolume_2d(front: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume (area) dominated by a 2-objective *front* w.r.t.
    *reference* (both objectives minimized; reference must be dominated by
    every front point).

    Used to compare DSE explorers: a larger hypervolume means a better
    approximation of the true Pareto front.
    """
    front = np.atleast_2d(np.asarray(front, dtype=np.float64))
    if front.shape[1] != 2:
        raise ValueError("hypervolume_2d requires exactly two objectives")
    ref = np.asarray(reference, dtype=np.float64)
    if np.any(front > ref):
        raise ValueError("reference point must be dominated by the whole front")
    # Keep only non-dominated points, sweep in increasing first objective.
    front = front[pareto_indices(front)]
    order = np.argsort(front[:, 0])
    front = front[order]
    area = 0.0
    prev_y = ref[1]
    for x, y in front:
        if y < prev_y:
            area += (ref[0] - x) * (prev_y - y)
            prev_y = y
    return float(area)


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row of *points*.

    Boundary points of each objective get ``inf``; interior points get the
    normalized side length of the surrounding cuboid.  Used by the NSGA-II
    explorer to preserve front diversity.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for j in range(m):
        order = np.argsort(points[:, j])
        col = points[order, j]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span == 0:
            continue
        distance[order[1:-1]] += (col[2:] - col[:-2]) / span
    return distance
