"""Minimal ASCII table rendering for benchmark reports.

Every benchmark regenerates a paper table or figure as rows of text; this
tiny renderer keeps the output aligned and uniform without pulling in a
formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """An append-only table with a fixed header, rendered as aligned text.

    >>> t = Table(["method", "PSNR (dB)"])
    >>> t.add_row(["HTCONV", 31.2])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, header: Sequence[str], title: str = "") -> None:
        if not header:
            raise ValueError("header must have at least one column")
        self.title = title
        self._header = [str(h) for h in header]
        self._rows: List[List[str]] = []

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def header(self) -> List[str]:
        return list(self._header)

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are stringified, floats with 4 significant
        digits."""
        cells = [self._format_cell(cell) for cell in row]
        if len(cells) != len(self._header):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self._header)}"
            )
        self._rows.append(cells)

    @staticmethod
    def _format_cell(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        """Render the table as aligned, pipe-separated text."""
        widths = [len(h) for h in self._header]
        for row in self._rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self._header, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
