"""SI unit constants and human-readable formatting.

The benchmark harness reports quantities spanning fifteen orders of magnitude
(picojoules per MAC up to tera cell-updates per second); keeping the scale
factors in one place avoids a whole class of silent unit bugs.
"""

from __future__ import annotations

#: Multiplicative SI prefixes.
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

#: Binary prefixes for memory capacities.
KIBI = 1024
MEBI = 1024**2
GIBI = 1024**3

_SI_STEPS = [
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def _significant(value: float, digits: int) -> str:
    """Format *value* to *digits* significant digits without exponent
    notation (the scaled values are always in [1, 1000))."""
    text = f"{value:.{digits}g}"
    if "e" in text or "E" in text:
        text = f"{float(text):.0f}"
    return text


def si_format(value: float, unit: str = "", precision: int = 3) -> str:
    """Format *value* with an SI prefix, e.g. ``si_format(16.8e12, "CUPS")``
    -> ``"16.8 TCUPS"``.

    Zero and sub-pico values are printed without a prefix.
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for step, prefix in _SI_STEPS:
        if magnitude >= step:
            scaled = value / step
            return f"{_significant(scaled, precision)} {prefix}{unit}".rstrip()
    return f"{value:.{precision}g} {unit}".rstrip()


def joules_per_op_to_tops_per_watt(joules_per_op: float) -> float:
    """Convert an energy-per-operation figure to TOPS/W.

    TOPS/W is numerically ops-per-second-per-watt / 1e12 which equals
    1 / (J/op) / 1e12 -- the identity used throughout the survey package.
    """
    if joules_per_op <= 0:
        raise ValueError("energy per operation must be positive")
    return 1.0 / joules_per_op / TERA


def tops_per_watt_to_joules_per_op(tops_per_watt: float) -> float:
    """Inverse of :func:`joules_per_op_to_tops_per_watt`."""
    if tops_per_watt <= 0:
        raise ValueError("TOPS/W must be positive")
    return 1.0 / (tops_per_watt * TERA)
