"""Shared numerics, metrics and reporting utilities.

Everything in here is domain-neutral: fixed-point arithmetic used by the
approximate-computing and IMC stacks, Pareto-front utilities used by the DSE
engine, image/accuracy metrics, deterministic RNG helpers and ASCII table
rendering used by the benchmark harness.
"""

from repro.core.api import (
    RunResult,
    Workload,
    build_run_result,
    ensure_default_workloads,
    example_config,
    get_workload,
    register_workload,
    request_digest,
    workload_names,
)
from repro.core.errors import (
    CampaignCellError,
    DeviceFault,
    ReproError,
    SimulationTimeout,
    StateError,
    TransientFault,
    ValidationError,
)
from repro.core.fixedpoint import FixedPointFormat, quantize, dequantize_int
from repro.core.metrics import mse, psnr, classification_accuracy
from repro.core.pareto import (
    dominates,
    pareto_front,
    pareto_indices,
    hypervolume_2d,
)
from repro.core.rng import make_rng
from repro.core.tables import Table
from repro.core.units import (
    GIGA,
    KIBI,
    MEBI,
    MEGA,
    MILLI,
    NANO,
    PICO,
    TERA,
    si_format,
)

__all__ = [
    "RunResult",
    "Workload",
    "build_run_result",
    "ensure_default_workloads",
    "example_config",
    "get_workload",
    "register_workload",
    "request_digest",
    "workload_names",
    "CampaignCellError",
    "DeviceFault",
    "ReproError",
    "SimulationTimeout",
    "StateError",
    "TransientFault",
    "ValidationError",
    "FixedPointFormat",
    "quantize",
    "dequantize_int",
    "mse",
    "psnr",
    "classification_accuracy",
    "dominates",
    "pareto_front",
    "pareto_indices",
    "hypervolume_2d",
    "make_rng",
    "Table",
    "GIGA",
    "KIBI",
    "MEBI",
    "MEGA",
    "MILLI",
    "NANO",
    "PICO",
    "TERA",
    "si_format",
]
