"""Deterministic random-number-generator helpers.

Every stochastic component in the suite (device variability, DNA channel
noise, DSE samplers, synthetic workload generators) takes an explicit seed or
:class:`numpy.random.Generator`; this module is the single place that turns
either into a generator so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts an integer seed, an existing generator (returned unchanged so
    that callers can thread one generator through a simulation), or ``None``
    for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Split *rng* into *count* independent child generators.

    Used when a simulation fans out into parallel stochastic components
    (e.g. one generator per crossbar tile) that must not share a stream.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
