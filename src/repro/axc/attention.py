"""Approximate attention: the Sec. V SoftMax inside transformer blocks.

The paper's approximate accelerators target "the SoftMax function [18]"
among the critical DL layers, and its Sec. VII Compute Units accelerate
"all major Transformer blocks" -- the natural meeting point is
scaled-dot-product attention with the hardware-approximate SoftMax.
This module provides exact and approximate attention plus quality
metrics, quantifying how the SoftMax approximation propagates through a
full attention layer (the paper's power-delay-accuracy trade-off).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.axc.softmax import softmax_approximate, softmax_exact
from repro.core.rng import SeedLike, make_rng


def scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    approximate: bool = False,
    fractional_correction: bool = True,
) -> np.ndarray:
    """Single-head attention ``softmax(Q K^T / sqrt(d)) V``.

    Shapes: Q ``(s_q, d)``, K ``(s_k, d)``, V ``(s_k, d_v)``.  With
    ``approximate`` the hardware SoftMax of
    :mod:`repro.axc.softmax` replaces the exact one.
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if queries.ndim != 2 or keys.ndim != 2 or values.ndim != 2:
        raise ValueError("Q, K, V must be 2-D matrices")
    if queries.shape[1] != keys.shape[1]:
        raise ValueError("Q and K feature dimensions differ")
    if keys.shape[0] != values.shape[0]:
        raise ValueError("K and V sequence lengths differ")
    scale = 1.0 / np.sqrt(queries.shape[1])
    scores = queries @ keys.T * scale
    if approximate:
        weights = softmax_approximate(
            scores, axis=-1, fractional_correction=fractional_correction
        )
        # The shift normalization leaves row sums in (0.5, 1]; hardware
        # compensates with a cheap renormalization of the output (one
        # multiply per row), included here.
        row_sums = weights.sum(axis=-1, keepdims=True)
        weights = weights / np.maximum(row_sums, 1e-12)
    else:
        weights = softmax_exact(scores, axis=-1)
    return weights @ values


def multi_head_attention(
    x: np.ndarray,
    w_qkv: np.ndarray,
    num_heads: int,
    approximate: bool = False,
) -> np.ndarray:
    """Multi-head self-attention over ``x (s, d)`` with fused QKV weights
    ``w_qkv (d, 3d)`` (output projection omitted -- quality studies only
    need the head outputs)."""
    x = np.asarray(x, dtype=np.float64)
    w_qkv = np.asarray(w_qkv, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be (seq, d_model)")
    d = x.shape[1]
    if w_qkv.shape != (d, 3 * d):
        raise ValueError(f"w_qkv must be ({d}, {3 * d})")
    if d % num_heads:
        raise ValueError("d_model must divide into heads")
    qkv = x @ w_qkv
    q, k, v = np.split(qkv, 3, axis=1)
    d_head = d // num_heads
    outputs = []
    for h in range(num_heads):
        sl = slice(h * d_head, (h + 1) * d_head)
        outputs.append(
            scaled_dot_product_attention(
                q[:, sl], k[:, sl], v[:, sl], approximate=approximate
            )
        )
    return np.concatenate(outputs, axis=1)


def attention_quality(
    seq_len: int = 64,
    d_model: int = 64,
    num_heads: int = 4,
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """Quality of approximate vs exact attention on random inputs.

    Returns the output relative error, the top-1 attended-position
    agreement (whether each query still attends hardest to the same key)
    and the adder-equivalent cost saving of the approximate SoftMax.
    """
    from repro.axc.softmax import softmax_cost_model

    rng = make_rng(seed)
    x = rng.normal(0, 1, (seq_len, d_model))
    w_qkv = rng.normal(0, 1.0 / np.sqrt(d_model), (d_model, 3 * d_model))
    exact = multi_head_attention(x, w_qkv, num_heads, approximate=False)
    approx = multi_head_attention(x, w_qkv, num_heads, approximate=True)
    rel_err = float(
        np.linalg.norm(exact - approx) / np.linalg.norm(exact)
    )

    # Top-1 attended key agreement per head.
    qkv = x @ w_qkv
    q, k, _ = np.split(qkv, 3, axis=1)
    d_head = d_model // num_heads
    agreements = []
    for h in range(num_heads):
        sl = slice(h * d_head, (h + 1) * d_head)
        scores = q[:, sl] @ k[:, sl].T / np.sqrt(d_head)
        exact_w = softmax_exact(scores)
        approx_w = softmax_approximate(scores)
        agreements.append(
            float(
                np.mean(
                    exact_w.argmax(axis=1) == approx_w.argmax(axis=1)
                )
            )
        )
    cost = softmax_cost_model(seq_len)
    return {
        "output_relative_error": rel_err,
        "top1_agreement": float(np.mean(agreements)),
        "softmax_cost_saving": cost["moderate_saving"],
    }
