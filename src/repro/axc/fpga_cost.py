"""FPGA implementation cost model for the HTCONV accelerator (Table I).

The paper implements the HTCONV super-resolution engine of Fig. 4 on a
Xilinx XC7K410T and compares it against two state-of-the-art FPGA
deconvolution accelerators ([15] Chang et al., [17] Chang/Zhao/Zhou).  We
cannot run Vivado, so this module substitutes an analytical cost model
(substitution #1 in DESIGN.md):

- **resources** follow the structure of Fig. 4 -- a 4-output MAC array of
  ``4*t*t`` DSP multipliers per processing lane, per-lane alignment and
  interpolation logic in LUTs/FFs, and channel line buffers in BRAM;
- **Fmax** degrades with operand width and array size (routing pressure);
- **power** is a per-resource dynamic model ``P = P_static +
  f * (a*LUT + b*FF + c*DSP + d*BRAM_kB)`` with coefficients fitted to the
  published Kintex-7 rows of Table I;
- **throughput** is ``4 * eta(coverage) * Fmax`` output pixels/s: the
  engine emits one 2x2 block per cycle and loses a calibrated fraction of
  cycles to the fully-computed foveal blocks.

The default configuration (16-bit operands, 9x9 kernel, 5 parallel lanes,
25% foveal coverage, 1080p input) reproduces the paper's "New" row to
within a few percent; the literature rows are carried as published
constants.  The model's value is the *response surface* around that point
(bitwidth, coverage and parallelism ablations), which synthesis on the
real board would be needed to refine but not to reshape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.units import MEGA


@dataclass(frozen=True)
class FPGAResources:
    """Occupied device resources."""

    luts: int
    ffs: int
    dsps: int
    bram_kb: float

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.dsps) < 0 or self.bram_kb < 0:
            raise ValueError("resource counts must be non-negative")


@dataclass(frozen=True)
class ImplementationRow:
    """One Table I row."""

    method: str
    in_resolution: str
    out_resolution: str
    bitwidth: int
    device: str
    fmax_mhz: float
    throughput_mpixels: float
    resources: FPGAResources
    power_w: Optional[float]

    @property
    def energy_efficiency(self) -> Optional[float]:
        """Mpixels/s/W, the last Table I column (None where power is NA)."""
        if self.power_w is None:
            return None
        return self.throughput_mpixels / self.power_w


@dataclass(frozen=True)
class HTConvAcceleratorConfig:
    """Design parameters of the Fig. 4 engine."""

    bitwidth: int = 16
    kernel_size: int = 9
    channels: int = 25
    lanes: int = 5
    foveal_coverage: float = 0.25
    input_width: int = 1920
    input_height: int = 1080

    def __post_init__(self) -> None:
        if self.bitwidth < 4 or self.bitwidth > 32:
            raise ValueError("bitwidth must be in [4, 32]")
        if self.kernel_size < 1 or self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be positive and odd")
        if self.lanes < 1 or self.channels < 1:
            raise ValueError("lanes and channels must be >= 1")
        if not 0.0 <= self.foveal_coverage <= 1.0:
            raise ValueError("foveal_coverage must be in [0, 1]")
        if self.input_width < 1 or self.input_height < 1:
            raise ValueError("input resolution must be positive")


# Power-model coefficients fitted to the published Kintex-7 rows
# (see module docstring): watts per MHz per resource unit.
_POWER_STATIC_W = 0.4
_POWER_LUT = 1.2e-7
_POWER_FF = 4.0e-8
_POWER_DSP = 3.0e-6
_POWER_BRAM_KB = 5.0e-6

# Timing-model constants: an 8-bit single-lane array closes near the DSP48
# fabric limit; wider operands and more lanes add routing pressure.
_FMAX_BASE_MHZ = 400.0
_FMAX_WIDTH_PENALTY = 0.10
_FMAX_LANE_PENALTY = 0.13

# Throughput derating per unit of foveal coverage (foveal 2x2 blocks
# occupy the MAC array for the full 4-output computation).
_FOVEAL_CYCLE_OVERHEAD = 0.72


def estimate_resources(config: HTConvAcceleratorConfig) -> FPGAResources:
    """Resource usage of the Fig. 4 engine.

    DSPs: each lane holds the ``4 t^2`` multiplier array plus ~8% support
    multipliers (pre-scaling, boundary handling).  LUTs/FFs scale with
    operand width per lane (alignment muxes, interpolation adders,
    pipeline registers).  BRAM holds ``t - 3`` input lines per channel at
    the input width (the interpolator reuses the even-even line buffer).
    """
    t2 = config.kernel_size**2
    dsps = config.lanes * (4 * t2 + 26)
    luts = config.lanes * (175.5 * config.bitwidth + 2808)
    ffs = config.lanes * (818.0 * config.bitwidth + 3270)
    lines = max(config.kernel_size - 3, 1)
    bram_kb = (
        config.channels
        * lines
        * config.input_width
        * config.bitwidth
        / 8.0
        / 1024.0
    )
    return FPGAResources(
        luts=int(round(luts)),
        ffs=int(round(ffs)),
        dsps=dsps,
        bram_kb=round(bram_kb, 2),
    )


def estimate_fmax_mhz(config: HTConvAcceleratorConfig) -> float:
    """Achievable clock after width and lane routing penalties."""
    width_factor = 1.0 + _FMAX_WIDTH_PENALTY * (config.bitwidth / 8.0 - 1.0)
    lane_factor = 1.0 + _FMAX_LANE_PENALTY * config.lanes
    return _FMAX_BASE_MHZ / (width_factor * lane_factor)


def estimate_power_w(resources: FPGAResources, fmax_mhz: float) -> float:
    """Static + activity-proportional dynamic power."""
    if fmax_mhz <= 0:
        raise ValueError("fmax must be positive")
    dynamic = fmax_mhz * (
        _POWER_LUT * resources.luts
        + _POWER_FF * resources.ffs
        + _POWER_DSP * resources.dsps
        + _POWER_BRAM_KB * resources.bram_kb
    )
    return _POWER_STATIC_W + dynamic


def estimate_throughput_mpixels(
    config: HTConvAcceleratorConfig, fmax_mhz: float
) -> float:
    """Sustained output-pixel rate in Mpixels/s."""
    eta = 1.0 / (1.0 + _FOVEAL_CYCLE_OVERHEAD * config.foveal_coverage)
    return 4.0 * eta * fmax_mhz * MEGA / MEGA  # Mpixels/s for fmax in MHz


def estimate_htconv_accelerator(
    config: HTConvAcceleratorConfig = HTConvAcceleratorConfig(),
    device: str = "XC7K410T",
) -> ImplementationRow:
    """Full Table I row for an HTCONV engine configuration."""
    resources = estimate_resources(config)
    fmax = estimate_fmax_mhz(config)
    power = estimate_power_w(resources, fmax)
    throughput = estimate_throughput_mpixels(config, fmax)
    out_w, out_h = 2 * config.input_width, 2 * config.input_height
    return ImplementationRow(
        method="New (HTCONV, modeled)",
        in_resolution=f"{config.input_width}x{config.input_height}",
        out_resolution=f"{out_w}x{out_h}",
        bitwidth=config.bitwidth,
        device=device,
        fmax_mhz=round(fmax, 1),
        throughput_mpixels=round(throughput, 2),
        resources=resources,
        power_w=round(power, 2),
    )


#: Published Table I rows, carried verbatim for comparison.
PUBLISHED_CHANG2020 = ImplementationRow(
    method="[15] Chang et al. 2020",
    in_resolution="1440x640",
    out_resolution="2880x1280",
    bitwidth=13,
    device="XC7K410T",
    fmax_mhz=130.0,
    throughput_mpixels=495.7,
    resources=FPGAResources(luts=171008, ffs=161792, dsps=1512, bram_kb=922.0),
    power_w=5.38,
)

PUBLISHED_ADAS2022 = ImplementationRow(
    method="[17] ADAS 2022",
    in_resolution="1920x1080",
    out_resolution="3840x2160",
    bitwidth=12,
    device="XC7VX485T",
    fmax_mhz=200.0,
    throughput_mpixels=762.53,
    resources=FPGAResources(luts=107520, ffs=125592, dsps=1558, bram_kb=1118.0),
    power_w=None,
)

PUBLISHED_HTCONV = ImplementationRow(
    method="New (HTCONV, published)",
    in_resolution="1920x1080",
    out_resolution="3840x2160",
    bitwidth=16,
    device="XC7K410T",
    fmax_mhz=222.0,
    throughput_mpixels=753.04,
    resources=FPGAResources(luts=28080, ffs=81791, dsps=1750, bram_kb=542.25),
    power_w=3.7,
)


def table_i_rows(
    config: HTConvAcceleratorConfig = HTConvAcceleratorConfig(),
) -> List[ImplementationRow]:
    """All Table I rows: the two literature baselines, the published
    HTCONV implementation and our modeled reproduction of it."""
    return [
        PUBLISHED_CHANG2020,
        PUBLISHED_ADAS2022,
        PUBLISHED_HTCONV,
        estimate_htconv_accelerator(config),
    ]
