"""FSRCNN super-resolution models (paper Sec. V, reference [19]).

FSRCNN(d, s, m) is the compact super-resolution CNN of Dong et al.: a 5x5
feature-extraction convolution with *d* filters, a 1x1 shrinking layer to
*s* channels, *m* 3x3 mapping layers, a 1x1 expanding layer back to *d*
channels (all PReLU-activated) and a final 9x9 x2 transposed convolution
producing the high-resolution image.

The paper's experiment customizes the pre-trained FSRCNN(25,5,1),
quantized to 16-bit fixed point, by swapping the conventional TCONV output
layer for HTCONV, and compares it against the bigger FSRCNN(56,12,4)
baseline.  This module reproduces those models; usable weights come from
:mod:`repro.axc.training` (there is no pre-trained checkpoint to ship, so
we train on synthetic scenes -- a substitution documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.axc.htconv import FovealRegion, htconv_x2
from repro.axc.layers import conv2d, prelu, transposed_conv2d_x2
from repro.axc.macs import MacCounter
from repro.core.fixedpoint import FixedPointFormat, quantize
from repro.core.rng import SeedLike, make_rng


@dataclass(frozen=True)
class FSRCNNConfig:
    """FSRCNN(d, s, m) hyper-parameters."""

    d: int
    s: int
    m: int
    feature_kernel: int = 5
    mapping_kernel: int = 3
    deconv_kernel: int = 9

    def __post_init__(self) -> None:
        if min(self.d, self.s) < 1 or self.m < 0:
            raise ValueError("d, s must be >= 1 and m >= 0")
        for k in (self.feature_kernel, self.mapping_kernel, self.deconv_kernel):
            if k < 1 or k % 2 == 0:
                raise ValueError("kernel sizes must be positive and odd")

    @property
    def name(self) -> str:
        return f"FSRCNN({self.d},{self.s},{self.m})"


#: The two configurations evaluated in the paper.
FSRCNN_25_5_1 = FSRCNNConfig(d=25, s=5, m=1)
FSRCNN_56_12_4 = FSRCNNConfig(d=56, s=12, m=4)


class FSRCNN:
    """An FSRCNN model with explicit numpy weights.

    ``forward`` runs x2 super-resolution on a single-channel image in
    [0, 1]; the output layer is selectable between the exact TCONV and
    HTCONV with a given foveal region, and an optional fixed-point format
    fake-quantizes weights and activations (the paper's 16-bit models).
    """

    def __init__(self, config: FSRCNNConfig, seed: SeedLike = 0) -> None:
        self.config = config
        rng = make_rng(seed)
        self.conv_weights: List[np.ndarray] = []
        self.conv_biases: List[np.ndarray] = []
        self.prelu_slopes: List[np.ndarray] = []
        self.conv_names: List[str] = []
        c = config
        shapes = [("feature", c.d, 1, c.feature_kernel)]
        shapes.append(("shrink", c.s, c.d, 1))
        shapes.extend(
            (f"map{i}", c.s, c.s, c.mapping_kernel) for i in range(c.m)
        )
        shapes.append(("expand", c.d, c.s, 1))
        for name, n_out, n_in, k in shapes:
            fan_in = n_in * k * k
            self.conv_names.append(name)
            self.conv_weights.append(
                rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(n_out, n_in, k, k))
            )
            self.conv_biases.append(np.zeros(n_out))
            self.prelu_slopes.append(np.full(n_out, 0.25))
        # Deconv initialised as a bilinear x2 interpolator spread across the
        # expand channels: a sensible identity-like starting point that makes
        # short training effective.
        self.deconv_kernel = self._bilinear_deconv_init(c, rng)
        self.deconv_bias = 0.0

    @staticmethod
    def _bilinear_deconv_init(
        config: FSRCNNConfig, rng: np.random.Generator
    ) -> np.ndarray:
        t = config.deconv_kernel
        center = (t - 1) / 2.0
        axis = 1.0 - np.abs(np.arange(t) - center) / 2.0
        axis = np.clip(axis, 0.0, None)
        bilinear = np.outer(axis, axis)
        bilinear /= bilinear.sum() / 4.0  # preserve mean under x2 upsampling
        kernel = rng.normal(0.0, 0.01, size=(config.d, t, t))
        kernel += bilinear / config.d
        return kernel

    @property
    def parameters(self) -> Dict[str, np.ndarray]:
        """Flat name -> array view of every trainable tensor."""
        params = {}
        for i, name in enumerate(self.conv_names):
            params[f"{name}.weight"] = self.conv_weights[i]
            params[f"{name}.bias"] = self.conv_biases[i]
            params[f"{name}.prelu"] = self.prelu_slopes[i]
        params["deconv.kernel"] = self.deconv_kernel
        return params

    def feature_stack(
        self,
        image: np.ndarray,
        counter: Optional[MacCounter] = None,
        quant_fmt: Optional[FixedPointFormat] = None,
    ) -> np.ndarray:
        """Run all convolutional layers up to (not including) the deconv."""
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 2:
            raise ValueError("FSRCNN takes a single-channel 2-D image")
        x = image[None, :, :]
        for i, name in enumerate(self.conv_names):
            w, b, a = (
                self.conv_weights[i],
                self.conv_biases[i],
                self.prelu_slopes[i],
            )
            if quant_fmt is not None:
                w, b, a = (
                    quantize(w, quant_fmt),
                    quantize(b, quant_fmt),
                    quantize(a, quant_fmt),
                )
            x = prelu(
                conv2d(x, w, b, counter=counter, layer_name=name), a
            )
            if quant_fmt is not None:
                x = quantize(x, quant_fmt)
        return x

    def forward(
        self,
        image: np.ndarray,
        tconv_mode: str = "exact",
        fovea: Optional[FovealRegion] = None,
        counter: Optional[MacCounter] = None,
        quant_fmt: Optional[FixedPointFormat] = None,
    ) -> np.ndarray:
        """x2 super-resolve *image*.

        *tconv_mode* is ``"exact"`` (conventional TCONV) or ``"htconv"``
        (requires *fovea*).  Output values are clipped to [0, 1].
        """
        features = self.feature_stack(image, counter=counter, quant_fmt=quant_fmt)
        kernel = self.deconv_kernel
        if quant_fmt is not None:
            kernel = quantize(kernel, quant_fmt)
        if tconv_mode == "exact":
            out = transposed_conv2d_x2(features, kernel, counter=counter)
        elif tconv_mode == "htconv":
            if fovea is None:
                raise ValueError("htconv mode requires a FovealRegion")
            out = htconv_x2(features, kernel, fovea, counter=counter)
        else:
            raise ValueError(f"unknown tconv_mode {tconv_mode!r}")
        out = out + self.deconv_bias
        if quant_fmt is not None:
            out = quantize(out, quant_fmt)
        return np.clip(out, 0.0, 1.0)

    def num_parameters(self) -> int:
        """Total trainable scalar count (model-size comparisons)."""
        return sum(p.size for p in self.parameters.values())
