"""Behavioral model of the Fig. 4 HTCONV hardware architecture.

Fig. 4 organizes the HTCONV engine around (i) input line buffers, (ii) a
kernel buffer feeding a MAC array that produces the exact outputs, and
(iii) an interpolation unit producing the peripheral odd outputs from
buffered even-even results.  This module implements that dataflow as a
*streaming* engine: input rows arrive one at a time, the engine only ever
reads rows resident in its line buffer (enforced -- reading an evicted
or not-yet-arrived row raises), and output row pairs are emitted as soon
as their dependencies are buffered.

The engine must produce output identical to the functional
:func:`repro.axc.htconv.htconv_x2` (tested), which validates both the
Fig. 4 organization and the line-buffer sizing used by the Table I BRAM
estimate: ``(t - 1) // 2 + 1`` input rows for the MAC array plus one
even-even output row for the interpolator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.axc.htconv import FovealRegion


class _LineBuffer:
    """A bounded buffer of rows; reads outside residency raise."""

    def __init__(self, capacity_rows: int, name: str) -> None:
        if capacity_rows < 1:
            raise ValueError("line buffer needs at least one row")
        self.capacity = capacity_rows
        self.name = name
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.peak_occupancy = 0

    def push(self, index: int, row: np.ndarray) -> None:
        self._rows[index] = row
        while len(self._rows) > self.capacity:
            self._rows.popitem(last=False)
        self.peak_occupancy = max(self.peak_occupancy, len(self._rows))

    def read(self, index: int) -> np.ndarray:
        if index not in self._rows:
            raise RuntimeError(
                f"{self.name}: row {index} not resident "
                f"(buffered: {list(self._rows)})"
            )
        return self._rows[index]

    def __contains__(self, index: int) -> bool:
        return index in self._rows


@dataclass
class StreamingStats:
    """Hardware-facing statistics of one frame."""

    input_rows: int
    output_rows: int
    mac_ops: int
    interp_ops: int
    input_buffer_rows: int
    output_buffer_rows: int


class HTConvStreamingEngine:
    """The Fig. 4 engine processing one frame row by row.

    *kernel* is ``(C, t, t)``; the engine accepts input rows through
    :meth:`push_row` and accumulates emitted output rows; :meth:`process`
    drives a whole frame.
    """

    def __init__(self, kernel: np.ndarray, fovea: FovealRegion) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 3 or kernel.shape[1] != kernel.shape[2]:
            raise ValueError(f"kernel must be (C, t, t), got {kernel.shape}")
        self.kernel = kernel
        self.fovea = fovea
        self.t = kernel.shape[-1]
        # MAC array needs input rows i .. i + (t-1)//2 (+1 more for the
        # odd output rows which read up row 2i+t, i.e. input i+t//2).
        self._lookahead = self.t // 2
        self.input_buffer = _LineBuffer(
            capacity_rows=self._lookahead + 1, name="input lines"
        )
        # Interpolator consumes even-even rows i and i+1.
        self.ee_buffer = _LineBuffer(capacity_rows=2, name="even-even rows")
        self.stats_mac_ops = 0
        self.stats_interp_ops = 0

    # -- MAC array ----------------------------------------------------
    def _up_row(self, up_index: int, width: int) -> np.ndarray:
        """Row *up_index* of the zero-stuffed image, built from the
        buffered input rows (zeros for odd rows / beyond the frame)."""
        c = self.kernel.shape[0]
        row = np.zeros((c, 2 * width + self.t - 1))
        if up_index % 2 == 0:
            source = up_index // 2
            if source in self.input_buffer:
                row[:, 0 : 2 * width : 2] = self.input_buffer.read(source)
        return row

    def _exact_outputs_for_row(
        self, i: int, height: int, width: int
    ) -> Dict[str, np.ndarray]:
        """Exact outputs of input row *i*: the even-even row everywhere
        plus the three odd variants (consumed only inside the fovea)."""
        t = self.t
        stack = np.stack(
            [self._up_row(2 * i + r, width) for r in range(t + 1)]
        )  # (t+1, C, 2W + t - 1)
        from numpy.lib.stride_tricks import sliding_window_view

        windows = sliding_window_view(stack, (t, t), axis=(0, 2))
        # windows: (2, C, 2W, t, t) -- vertical offset 0 or 1.
        even = windows[0]
        odd = windows[1]
        ee = np.einsum(
            "cxuv,cuv->x", even[:, 0 : 2 * width : 2], self.kernel
        )
        eo = np.einsum(
            "cxuv,cuv->x", even[:, 1 : 2 * width : 2], self.kernel
        )
        oe = np.einsum(
            "cxuv,cuv->x", odd[:, 0 : 2 * width : 2], self.kernel
        )
        oo = np.einsum(
            "cxuv,cuv->x", odd[:, 1 : 2 * width : 2], self.kernel
        )
        self.stats_mac_ops += 4 * width * t * t * self.kernel.shape[0]
        return {"ee": ee, "eo": eo, "oe": oe, "oo": oo}

    # -- frame processing ----------------------------------------------
    def process(self, image: np.ndarray) -> np.ndarray:
        """Stream *image* ``(C, H, W)`` through the engine."""
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 3 or image.shape[0] != self.kernel.shape[0]:
            raise ValueError("image must be (C, H, W) matching the kernel")
        _, height, width = image.shape
        mask = self.fovea.mask(height, width)
        out = np.zeros((2 * height, 2 * width))
        exact_rows: Dict[int, Dict[str, np.ndarray]] = {}

        pending_interp: List[int] = []
        for arriving in range(height + self._lookahead):
            if arriving < height:
                self.input_buffer.push(arriving, image[:, arriving, :])
            ready = arriving - self._lookahead
            if ready < 0:
                continue
            rows = self._exact_outputs_for_row(ready, height, width)
            exact_rows[ready] = rows
            self.ee_buffer.push(ready, rows["ee"])
            out[2 * ready, 0::2] = rows["ee"]
            foveal = mask[ready]
            out[2 * ready + 1, 0::2][foveal] = rows["oe"][foveal]
            out[2 * ready, 1::2][foveal] = rows["eo"][foveal]
            out[2 * ready + 1, 1::2][foveal] = rows["oo"][foveal]
            pending_interp.append(ready)
            # The interpolator for row r needs even-even rows r and r+1;
            # run it as soon as the successor row is buffered (or at the
            # last row, which clamps).
            while pending_interp and (
                pending_interp[0] + 1 in self.ee_buffer
                or pending_interp[0] == height - 1
            ):
                self._interpolate_row(
                    pending_interp.pop(0), height, width, mask, out
                )
        return out

    def _interpolate_row(
        self,
        i: int,
        height: int,
        width: int,
        mask: np.ndarray,
        out: np.ndarray,
    ) -> None:
        ee = self.ee_buffer.read(i)
        south = (
            self.ee_buffer.read(i + 1) if i + 1 < height else ee
        )
        east = np.concatenate([ee[1:], ee[-1:]])
        south_east = np.concatenate([south[1:], south[-1:]])
        periph = ~mask[i]
        out[2 * i + 1, 0::2][periph] = (ee[periph] + south[periph]) / 2.0
        out[2 * i, 1::2][periph] = (ee[periph] + east[periph]) / 2.0
        out[2 * i + 1, 1::2][periph] = (
            ee[periph] + east[periph] + south[periph] + south_east[periph]
        ) / 4.0
        self.stats_interp_ops += int(periph.sum()) * 5

    def stats(self, height: int, width: int) -> StreamingStats:
        """Hardware statistics after processing a ``height x width``
        frame."""
        return StreamingStats(
            input_rows=height,
            output_rows=2 * height,
            mac_ops=self.stats_mac_ops,
            interp_ops=self.stats_interp_ops,
            input_buffer_rows=self.input_buffer.peak_occupancy,
            output_buffer_rows=self.ee_buffer.peak_occupancy,
        )
