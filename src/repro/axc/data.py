"""Synthetic image generators for the super-resolution experiments.

The paper evaluates HTCONV on natural test images upscaled by the
FSRCNN models; those images are not redistributable, so the benches use
synthetic scenes with controlled spectral content: smooth multi-sinusoid
textures (natural-image-like 1/f energy), sharp-edged geometric scenes
(the hard case for interpolation) and mixed scenes.  All generators return
float images in [0, 1] and are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.rng import SeedLike, make_rng


def smooth_texture(
    height: int, width: int, components: int = 8, seed: SeedLike = None
) -> np.ndarray:
    """Band-limited texture: a sum of random low-frequency sinusoids.

    Amplitudes fall off as 1/f, mimicking the spectral statistics of
    natural images (where super-resolution PSNR is usually measured).
    """
    rng = make_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    image = np.zeros((height, width), dtype=np.float64)
    for _ in range(components):
        freq = rng.uniform(0.02, 0.25)
        angle = rng.uniform(0, np.pi)
        phase = rng.uniform(0, 2 * np.pi)
        fy, fx = freq * np.sin(angle), freq * np.cos(angle)
        image += (1.0 / (1.0 + freq * 20)) * np.sin(
            2 * np.pi * (fy * ys + fx * xs) + phase
        )
    lo, hi = image.min(), image.max()
    if hi > lo:
        image = (image - lo) / (hi - lo)
    return image


def edge_scene(height: int, width: int, seed: SeedLike = None) -> np.ndarray:
    """Piecewise-constant scene with random rectangles and a diagonal edge.

    Sharp discontinuities are where foveated interpolation visibly loses
    fidelity, so the quality bench includes this adversarial content.
    """
    rng = make_rng(seed)
    image = np.full((height, width), 0.2, dtype=np.float64)
    for _ in range(6):
        r0 = rng.integers(0, max(1, height - 4))
        c0 = rng.integers(0, max(1, width - 4))
        r1 = rng.integers(r0 + 2, min(height, r0 + max(3, height // 3)) + 1)
        c1 = rng.integers(c0 + 2, min(width, c0 + max(3, width // 3)) + 1)
        image[r0:r1, c0:c1] = rng.uniform(0, 1)
    ys, xs = np.mgrid[0:height, 0:width]
    image[ys > xs * height / max(width, 1)] *= 0.7
    return np.clip(image, 0.0, 1.0)


def mixed_scene(height: int, width: int, seed: SeedLike = None) -> np.ndarray:
    """Half texture, half edges -- the generic evaluation scene."""
    rng = make_rng(seed)
    tex = smooth_texture(height, width, seed=rng)
    edges = edge_scene(height, width, seed=rng)
    return np.clip(0.6 * tex + 0.4 * edges, 0.0, 1.0)


def downsample_x2(image: np.ndarray) -> np.ndarray:
    """2x2 box downsampling -- produces the low-resolution input from a
    high-resolution ground truth (the standard SR evaluation protocol)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("expected a 2-D image")
    h, w = image.shape
    if h % 2 or w % 2:
        raise ValueError("image dimensions must be even")
    return image.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def sr_pair(
    hr_height: int, hr_width: int, kind: str = "mixed", seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A (low-resolution, high-resolution) training/evaluation pair."""
    generators = {
        "smooth": smooth_texture,
        "edges": edge_scene,
        "mixed": mixed_scene,
    }
    if kind not in generators:
        raise ValueError(f"unknown scene kind {kind!r}")
    hr = generators[kind](hr_height, hr_width, seed=seed)
    return downsample_x2(hr), hr


def evaluation_set(
    hr_size: int = 64, count: int = 6, seed: SeedLike = 1234
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Deterministic evaluation set cycling through all scene kinds."""
    rng = make_rng(seed)
    kinds = ["smooth", "edges", "mixed"]
    return [
        sr_pair(hr_size, hr_size, kind=kinds[i % len(kinds)], seed=rng)
        for i in range(count)
    ]
