"""Multiply-accumulate accounting.

The Sec. V headline claim is quantitative MAC savings ("more than 80% of
MACs"), so every layer kernel in :mod:`repro.axc` takes an optional
:class:`MacCounter` and charges the multiplies it performs.  The counter
distinguishes exact MACs from the cheap interpolation adds HTCONV uses in
the peripheral region, because the hardware cost of the two differs (DSP
slices vs. plain LUT adders in Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MacCounter:
    """Accumulates operation counts per named layer."""

    macs: Dict[str, int] = field(default_factory=dict)
    interp_adds: Dict[str, int] = field(default_factory=dict)

    def charge_macs(self, layer: str, count: int) -> None:
        """Charge *count* exact multiply-accumulates to *layer*."""
        if count < 0:
            raise ValueError("MAC count must be non-negative")
        self.macs[layer] = self.macs.get(layer, 0) + count

    def charge_interp(self, layer: str, count: int) -> None:
        """Charge *count* interpolation additions (no multiplier) to
        *layer*."""
        if count < 0:
            raise ValueError("add count must be non-negative")
        self.interp_adds[layer] = self.interp_adds.get(layer, 0) + count

    @property
    def total_macs(self) -> int:
        return sum(self.macs.values())

    @property
    def total_interp_adds(self) -> int:
        return sum(self.interp_adds.values())

    def merge(self, other: "MacCounter") -> None:
        """Fold *other*'s counts into this counter."""
        for layer, count in other.macs.items():
            self.charge_macs(layer, count)
        for layer, count in other.interp_adds.items():
            self.charge_interp(layer, count)

    def saving_vs(self, baseline: "MacCounter") -> float:
        """Fraction of exact MACs saved relative to *baseline*.

        ``saving_vs`` of 0.8 reproduces the paper's "saves more than 80%
        of MACs" phrasing.
        """
        if baseline.total_macs == 0:
            raise ValueError("baseline performed no MACs")
        return 1.0 - self.total_macs / baseline.total_macs

    def report(self) -> str:
        """Per-layer breakdown for benchmark logs."""
        lines = ["layer MACs:"]
        for layer in sorted(self.macs):
            lines.append(f"  {layer}: {self.macs[layer]}")
        if self.interp_adds:
            lines.append("interpolation adds:")
            for layer in sorted(self.interp_adds):
                lines.append(f"  {layer}: {self.interp_adds[layer]}")
        lines.append(f"total MACs: {self.total_macs}")
        return "\n".join(lines)


def conv2d_macs(
    out_h: int, out_w: int, k_h: int, k_w: int, c_in: int, c_out: int
) -> int:
    """Analytic MAC count of a dense 2-D convolution."""
    for name, v in (
        ("out_h", out_h),
        ("out_w", out_w),
        ("k_h", k_h),
        ("k_w", k_w),
        ("c_in", c_in),
        ("c_out", c_out),
    ):
        if v <= 0:
            raise ValueError(f"{name} must be positive")
    return out_h * out_w * k_h * k_w * c_in * c_out
