"""Numpy training loop for the FSRCNN models.

The paper uses the *pre-trained* FSRCNN checkpoints of [19]; those are not
redistributable, so the reproduction trains the models from scratch on the
synthetic scenes of :mod:`repro.axc.data` (substitution documented in
DESIGN.md).  The experiments only need weights good enough that PSNR
comparisons between layer variants are meaningful, which a few hundred Adam
steps on small patches provide.

The gradients are written out explicitly (no autodiff dependency): im2col
convolution backward, PReLU backward and the x2 transposed-convolution
backward derived from the Fig. 3 indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy.signal import convolve2d

from repro.axc.data import sr_pair
from repro.axc.fsrcnn import FSRCNN
from repro.core.metrics import psnr
from repro.core.rng import SeedLike, make_rng


def _conv_forward(
    x: np.ndarray, weights: np.ndarray, bias: np.ndarray, padding: int
) -> Tuple[np.ndarray, dict]:
    """Forward convolution keeping the im2col cache for backward."""
    n_filters, c_in, k_h, k_w = weights.shape
    x_pad = (
        np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        if padding
        else x
    )
    _, h, w = x_pad.shape
    out_h, out_w = h - k_h + 1, w - k_w + 1
    windows = sliding_window_view(x_pad, (k_h, k_w), axis=(1, 2))
    cols = windows.transpose(1, 2, 0, 3, 4).reshape(out_h * out_w, -1)
    flat_w = weights.reshape(n_filters, -1)
    out = (cols @ flat_w.T).T.reshape(n_filters, out_h, out_w)
    out += bias[:, None, None]
    cache = {
        "cols": cols,
        "x_shape": x.shape,
        "padding": padding,
        "weights": weights,
        "out_hw": (out_h, out_w),
    }
    return out, cache


def _conv_backward(
    dout: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients (dx, dW, db) of :func:`_conv_forward`."""
    weights = cache["weights"]
    n_filters, c_in, k_h, k_w = weights.shape
    out_h, out_w = cache["out_hw"]
    dout_flat = dout.reshape(n_filters, -1)
    d_weights = (dout_flat @ cache["cols"]).reshape(weights.shape)
    d_bias = dout.sum(axis=(1, 2))
    dcols = (dout_flat.T @ weights.reshape(n_filters, -1)).reshape(
        out_h, out_w, c_in, k_h, k_w
    )
    c, h, w = cache["x_shape"]
    padding = cache["padding"]
    dx_pad = np.zeros((c, h + 2 * padding, w + 2 * padding))
    for u in range(k_h):
        for v in range(k_w):
            dx_pad[:, u : u + out_h, v : v + out_w] += dcols[
                :, :, :, u, v
            ].transpose(2, 0, 1)
    if padding:
        dx = dx_pad[:, padding:-padding, padding:-padding]
    else:
        dx = dx_pad
    return dx, d_weights, d_bias


def _prelu_forward(x: np.ndarray, slopes: np.ndarray) -> Tuple[np.ndarray, dict]:
    out = np.where(x >= 0, x, slopes[:, None, None] * x)
    return out, {"x": x, "slopes": slopes}


def _prelu_backward(
    dout: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray]:
    x, slopes = cache["x"], cache["slopes"]
    negative = x < 0
    dx = np.where(negative, slopes[:, None, None] * dout, dout)
    d_slopes = np.where(negative, dout * x, 0.0).sum(axis=(1, 2))
    return dx, d_slopes


def _tconv_forward(x: np.ndarray, kernel: np.ndarray) -> Tuple[np.ndarray, dict]:
    """Forward x2 transposed convolution (same math as
    :func:`repro.axc.layers.transposed_conv2d_x2`), caching the upsampled
    windows for the kernel gradient."""
    c, h, w = x.shape
    t = kernel.shape[-1]
    up = np.zeros((c, 2 * h + t - 1, 2 * w + t - 1))
    up[:, : 2 * h : 2, : 2 * w : 2] = x
    windows = sliding_window_view(up, (t, t), axis=(1, 2))[:, : 2 * h, : 2 * w]
    out = np.einsum("cyxuv,cuv->yx", windows, kernel)
    return out, {"windows": windows, "kernel": kernel, "x_shape": x.shape}


def _tconv_backward(
    dout: np.ndarray, cache: dict
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients (dx, dK) of the x2 transposed convolution.

    ``dK(c,u,v) = sum_{y,x} dO(y,x) up(c, y+u, x+v)`` reuses the cached
    windows; ``dx(c,i,j) = dup(c, 2i, 2j)`` where ``dup`` is the full
    convolution of ``dO`` with the kernel.
    """
    kernel = cache["kernel"]
    c, h, w = cache["x_shape"]
    d_kernel = np.einsum("cyxuv,yx->cuv", cache["windows"], dout)
    dx = np.empty((c, h, w))
    for ch in range(c):
        dup = convolve2d(dout, kernel[ch], mode="full")
        dx[ch] = dup[: 2 * h : 2, : 2 * w : 2]
    return dx, d_kernel


def model_forward_with_cache(
    model: FSRCNN, image: np.ndarray
) -> Tuple[np.ndarray, List[dict]]:
    """Full float forward pass keeping every layer cache."""
    x = np.asarray(image, dtype=np.float64)[None, :, :]
    caches: List[dict] = []
    for i in range(len(model.conv_names)):
        w = model.conv_weights[i]
        pad = (w.shape[-1] - 1) // 2
        x, conv_cache = _conv_forward(x, w, model.conv_biases[i], pad)
        x, act_cache = _prelu_forward(x, model.prelu_slopes[i])
        caches.append({"conv": conv_cache, "act": act_cache})
    out, tconv_cache = _tconv_forward(x, model.deconv_kernel)
    caches.append({"tconv": tconv_cache})
    return out + model.deconv_bias, caches


def model_backward(
    model: FSRCNN, dout: np.ndarray, caches: List[dict]
) -> Dict[str, np.ndarray]:
    """Backpropagate *dout* through the cached forward pass; returns
    gradients keyed like :attr:`FSRCNN.parameters` plus ``deconv.bias``."""
    grads: Dict[str, np.ndarray] = {}
    grads["deconv.bias"] = np.array(dout.sum())
    dx, d_kernel = _tconv_backward(dout, caches[-1]["tconv"])
    grads["deconv.kernel"] = d_kernel
    for i in reversed(range(len(model.conv_names))):
        name = model.conv_names[i]
        dx, d_slopes = _prelu_backward(dx, caches[i]["act"])
        dx, d_weights, d_bias = _conv_backward(dx, caches[i]["conv"])
        grads[f"{name}.prelu"] = d_slopes
        grads[f"{name}.weight"] = d_weights
        grads[f"{name}.bias"] = d_bias
    return grads


@dataclass
class TrainResult:
    """Training summary returned by :func:`train_fsrcnn`."""

    losses: List[float]
    final_psnr_db: float
    steps: int


class _Adam:
    """Minimal Adam optimizer over a dict of parameter arrays."""

    def __init__(self, lr: float = 1e-3) -> None:
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m: Dict[str, np.ndarray] = {}
        self.v: Dict[str, np.ndarray] = {}
        self.t = 0

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        self.t += 1
        for key, grad in grads.items():
            if key not in params:
                continue
            m = self.m.setdefault(key, np.zeros_like(params[key]))
            v = self.v.setdefault(key, np.zeros_like(params[key]))
            m += (1 - self.beta1) * (grad - m)
            v += (1 - self.beta2) * (grad**2 - v)
            m_hat = m / (1 - self.beta1**self.t)
            v_hat = v / (1 - self.beta2**self.t)
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def train_fsrcnn(
    model: FSRCNN,
    steps: int = 200,
    patch: int = 24,
    lr: float = 2e-3,
    seed: SeedLike = 0,
) -> TrainResult:
    """Train *model* in place on synthetic SR patch pairs with Adam.

    Each step draws a fresh ``patch x patch`` low-resolution scene and its
    2x ground truth, minimizing the MSE of the reconstruction.  Returns the
    loss trace and final PSNR on a held-out scene.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if patch % 2:
        raise ValueError("patch size must be even")
    rng = make_rng(seed)
    optimizer = _Adam(lr=lr)
    params = model.parameters
    losses: List[float] = []
    kinds = ["smooth", "edges", "mixed"]
    for step in range(steps):
        lr_img, hr_img = sr_pair(
            2 * patch, 2 * patch, kind=kinds[step % 3], seed=rng
        )
        out, caches = model_forward_with_cache(model, lr_img)
        err = out - hr_img
        losses.append(float(np.mean(err**2)))
        grads = model_backward(model, 2.0 * err / err.size, caches)
        optimizer.step(params, grads)
        model.deconv_bias -= optimizer.lr * float(grads["deconv.bias"])
    lr_img, hr_img = sr_pair(2 * patch, 2 * patch, kind="mixed", seed=999)
    recon = model.forward(lr_img)
    return TrainResult(
        losses=losses,
        final_psnr_db=psnr(hr_img, recon, peak=1.0),
        steps=steps,
    )
