"""Aggressive approximate SoftMax (paper Sec. V, reference [18]).

Spagnolo, Perri and Corsonello's power-efficient SoftMax replaces the two
expensive primitives of the exact function -- exponentiation and division --
with hardware-trivial operations:

1. exponentials become powers of two: ``e^z = 2^(z * log2 e)``, and ``2^s``
   for ``s = q + f`` (integer ``q``, fractional ``f``) is approximated by
   the piecewise-linear ``2^q * (1 + f)``, a shift and an add;
2. the normalizing division is replaced by a shift by
   ``ceil(log2 D)`` where ``D`` is the accumulated denominator (a
   leading-one detector in hardware).

The *aggressive* configuration drops the fractional correction entirely
(pure powers of two).  Outputs no longer sum exactly to one -- the paper's
point is that downstream argmax/attention behaviour is preserved at a
fraction of the power.
"""

from __future__ import annotations

import numpy as np

LOG2_E = float(np.log2(np.e))


def softmax_exact(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable exact SoftMax (the accurate baseline)."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _pow2_piecewise_linear(s: np.ndarray) -> np.ndarray:
    """``2^s`` approximated as ``2^floor(s) * (1 + frac(s))``.

    Exact at integer ``s``; the worst relative error of the linear
    segment is ~6.1% at ``frac = 0.5``.
    """
    q = np.floor(s)
    f = s - q
    return np.exp2(q) * (1.0 + f)


def _pow2_truncated(s: np.ndarray) -> np.ndarray:
    """``2^s`` truncated to ``2^floor(s)`` (the aggressive variant)."""
    return np.exp2(np.floor(s))


def softmax_approximate(
    logits: np.ndarray,
    axis: int = -1,
    fractional_correction: bool = True,
    shift_normalization: bool = True,
) -> np.ndarray:
    """Hardware-approximate SoftMax.

    *fractional_correction* selects the piecewise-linear ``2^s`` (the
    moderate design) versus pure power-of-two truncation (the aggressive
    design).  *shift_normalization* replaces the division by the exact
    denominator with a shift by ``ceil(log2 D)``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = (logits - logits.max(axis=axis, keepdims=True)) * LOG2_E
    pow2 = (
        _pow2_piecewise_linear(shifted)
        if fractional_correction
        else _pow2_truncated(shifted)
    )
    denom = pow2.sum(axis=axis, keepdims=True)
    if shift_normalization:
        denom = np.exp2(np.ceil(np.log2(denom)))
    return pow2 / denom


def argmax_agreement(
    logits: np.ndarray, axis: int = -1, **approx_kwargs
) -> float:
    """Fraction of rows whose argmax survives the approximation.

    The paper's quality argument: classification and attention care about
    the *ranking* of SoftMax outputs, which the approximation preserves.
    """
    exact = softmax_exact(logits, axis=axis)
    approx = softmax_approximate(logits, axis=axis, **approx_kwargs)
    agree = np.argmax(exact, axis=axis) == np.argmax(approx, axis=axis)
    return float(np.mean(agree))


def max_absolute_error(
    logits: np.ndarray, axis: int = -1, **approx_kwargs
) -> float:
    """Worst-case elementwise deviation from the exact SoftMax."""
    exact = softmax_exact(logits, axis=axis)
    approx = softmax_approximate(logits, axis=axis, **approx_kwargs)
    return float(np.max(np.abs(exact - approx)))


def softmax_cost_model(vector_length: int) -> dict:
    """Relative hardware-operation counts per SoftMax evaluation.

    The exact design spends one exponential and one division per element;
    the approximate design spends one shift-add (piecewise-linear ``2^s``)
    or one shift (aggressive) and a final shift for the normalization.
    Exponential/divider costs are expressed in adder-equivalents, the
    convention used by the approximate-arithmetic literature the paper
    builds on (a 16-bit divider ~ 16 adders, an exp LUT+interp ~ 8).
    """
    if vector_length <= 0:
        raise ValueError("vector_length must be positive")
    exact_adders = vector_length * (8 + 16)
    moderate_adders = vector_length * (1 + 1)
    aggressive_adders = vector_length * 1
    return {
        "exact_adder_equivalents": exact_adders,
        "moderate_adder_equivalents": moderate_adders,
        "aggressive_adder_equivalents": aggressive_adders,
        "moderate_saving": 1.0 - moderate_adders / exact_adders,
        "aggressive_saving": 1.0 - aggressive_adders / exact_adders,
    }
