"""Exact deep-learning layer kernels (the accurate baselines of Sec. V).

All kernels operate on channel-first numpy arrays: feature maps are
``(C, H, W)``, convolution weights are ``(F, C, kH, kW)``.  Every kernel
optionally charges its multiplies to a :class:`~repro.axc.macs.MacCounter`
so the approximate variants can be compared against them.

The transposed convolution follows the indexing convention of the paper's
Fig. 3 pseudo-code: the input is zero-upsampled by 2 (``up(2i,2j) = I(i,j)``)
and each output pixel is ``O(y,x) = sum_{u,v} K(u,v) * up(y+u, x+v)``,
producing a ``2H x 2W`` output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.axc.macs import MacCounter


def _check_feature_map(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError(f"feature map must be (C, H, W), got shape {x.shape}")
    return x


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    padding: Optional[int] = None,
    counter: Optional[MacCounter] = None,
    layer_name: str = "conv",
) -> np.ndarray:
    """Dense 2-D convolution (cross-correlation, stride 1).

    *padding* defaults to "same" (``(k-1)//2``) for odd kernels, matching
    the FSRCNN layer geometry.  Returns ``(F, H', W')``.
    """
    x = _check_feature_map(x)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError(f"weights must be (F, C, kH, kW), got {weights.shape}")
    n_filters, c_in, k_h, k_w = weights.shape
    if c_in != x.shape[0]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[0]}, weights expect {c_in}"
        )
    if padding is None:
        padding = (k_h - 1) // 2
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    _, h, w = x.shape
    out_h, out_w = h - k_h + 1, w - k_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    # im2col: windows has shape (C, out_h, out_w, kH, kW).
    windows = sliding_window_view(x, (k_h, k_w), axis=(1, 2))
    cols = windows.transpose(1, 2, 0, 3, 4).reshape(out_h * out_w, -1)
    flat_w = weights.reshape(n_filters, -1)
    out = (cols @ flat_w.T).T.reshape(n_filters, out_h, out_w)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (n_filters,):
            raise ValueError(f"bias must be ({n_filters},), got {bias.shape}")
        out += bias[:, None, None]
    if counter is not None:
        counter.charge_macs(
            layer_name, out_h * out_w * k_h * k_w * c_in * n_filters
        )
    return out


def zero_upsample_x2(x: np.ndarray, pad_tail: int = 0) -> np.ndarray:
    """Fig. 3 lines 3-4: insert zeros so ``up(2i, 2j) = I(i, j)``.

    *pad_tail* appends extra zero rows/columns (the ``t-1`` halo the
    output correlation reads past the last input sample).
    """
    x = _check_feature_map(x)
    c, h, w = x.shape
    up = np.zeros((c, 2 * h + pad_tail, 2 * w + pad_tail), dtype=np.float64)
    up[:, : 2 * h : 2, : 2 * w : 2] = x
    return up


def transposed_conv2d_x2(
    x: np.ndarray,
    kernel: np.ndarray,
    counter: Optional[MacCounter] = None,
    layer_name: str = "tconv",
) -> np.ndarray:
    """Exact x2 transposed convolution, the accurate TCONV baseline.

    *x* is ``(C, H, W)``; *kernel* is ``(C, t, t)`` and the single output
    channel is ``(2H, 2W)``: ``O(y, x) = sum_{c,u,v} K(c,u,v) *
    up(c, y+u, x+v)`` exactly as in the Fig. 3 pseudo-code (summed over
    input channels).
    """
    x = _check_feature_map(x)
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 3:
        raise ValueError(f"kernel must be (C, t, t), got {kernel.shape}")
    c, t_h, t_w = kernel.shape
    if t_h != t_w:
        raise ValueError("Fig. 3 assumes a square t x t kernel")
    if c != x.shape[0]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[0]}, kernel expects {c}"
        )
    t = t_h
    _, h, w = x.shape
    up = zero_upsample_x2(x, pad_tail=t - 1)
    windows = sliding_window_view(up, (t, t), axis=(1, 2))
    # windows: (C, 2H, 2W, t, t); contract channel and kernel axes.
    out = np.einsum("cyxuv,cuv->yx", windows[:, : 2 * h, : 2 * w], kernel)
    if counter is not None:
        # Each of the 4H*W output pixels needs t*t*C multiplies.  (The
        # zeros in `up` make many products trivially zero; the dense
        # hardware baseline still spends the MACs, which is exactly why
        # TCONV is expensive and HTCONV is worth building.)
        counter.charge_macs(layer_name, 4 * h * w * t * t * c)
    return out


def max_pool2d(
    x: np.ndarray,
    pool: int = 2,
    stride: Optional[int] = None,
) -> np.ndarray:
    """Max pooling over non-overlapping (or strided) windows."""
    x = _check_feature_map(x)
    if pool < 1:
        raise ValueError("pool size must be >= 1")
    stride = pool if stride is None else stride
    if stride < 1:
        raise ValueError("stride must be >= 1")
    windows = sliding_window_view(x, (pool, pool), axis=(1, 2))
    return windows[:, ::stride, ::stride].max(axis=(-2, -1))


def avg_pool2d(x: np.ndarray, pool: int = 2) -> np.ndarray:
    """Average pooling over non-overlapping windows."""
    x = _check_feature_map(x)
    if pool < 1:
        raise ValueError("pool size must be >= 1")
    windows = sliding_window_view(x, (pool, pool), axis=(1, 2))
    return windows[:, ::pool, ::pool].mean(axis=(-2, -1))


def fully_connected(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    counter: Optional[MacCounter] = None,
    layer_name: str = "fc",
) -> np.ndarray:
    """Fully-connected layer ``y = W x + b`` on a flat input vector."""
    x = np.asarray(x, dtype=np.float64).ravel()
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != x.size:
        raise ValueError(
            f"weights must be (out, {x.size}), got {weights.shape}"
        )
    out = weights @ x
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (weights.shape[0],):
            raise ValueError("bias shape mismatch")
        out = out + bias
    if counter is not None:
        counter.charge_macs(layer_name, weights.size)
    return out


def prelu(x: np.ndarray, slopes: np.ndarray) -> np.ndarray:
    """Parametric ReLU with one learned slope per channel (FSRCNN's
    activation)."""
    x = _check_feature_map(x)
    slopes = np.asarray(slopes, dtype=np.float64)
    if slopes.shape != (x.shape[0],):
        raise ValueError(
            f"slopes must be ({x.shape[0]},), got {slopes.shape}"
        )
    return np.where(x >= 0, x, slopes[:, None, None] * x)
