"""Approximate-computing FPGA accelerators (paper Sec. V).

The ICSC Flagship 2 project develops approximate accelerators for the
critical layers of deep-learning models: convolutions, transposed
convolutions, pooling, fully-connected layers and the SoftMax function.
The flagship result is **HTCONV** (Fig. 3 / Fig. 4 / Table I): a hybrid
transposed-convolution layer that exploits foveated rendering -- full
accuracy inside the foveal region, cheap interpolation outside -- saving
more than 80% of MACs with a PSNR reduction below 10% on FSRCNN
super-resolution.

Modules:

- :mod:`repro.axc.macs`        -- MAC accounting shared by all layers;
- :mod:`repro.axc.layers`      -- exact CONV / TCONV / pooling / FC kernels;
- :mod:`repro.axc.softmax`     -- aggressive approximate SoftMax [18];
- :mod:`repro.axc.htconv`      -- the Fig. 3 hybrid TCONV, implemented verbatim;
- :mod:`repro.axc.fsrcnn`      -- FSRCNN super-resolution models [19];
- :mod:`repro.axc.training`    -- numpy training loop to obtain usable weights;
- :mod:`repro.axc.data`        -- synthetic image generators for SR tests;
- :mod:`repro.axc.fpga_cost`   -- FPGA resource/power model generating Table I.
"""

from repro.axc.macs import MacCounter
from repro.axc.layers import (
    conv2d,
    transposed_conv2d_x2,
    max_pool2d,
    fully_connected,
)
from repro.axc.htconv import FovealRegion, htconv_x2
from repro.axc.htconv_hw import HTConvStreamingEngine
from repro.axc.softmax import softmax_exact, softmax_approximate
from repro.axc.attention import scaled_dot_product_attention
from repro.axc.fsrcnn import FSRCNN, FSRCNN_25_5_1, FSRCNN_56_12_4

__all__ = [
    "MacCounter",
    "conv2d",
    "transposed_conv2d_x2",
    "max_pool2d",
    "fully_connected",
    "FovealRegion",
    "htconv_x2",
    "HTConvStreamingEngine",
    "softmax_exact",
    "softmax_approximate",
    "scaled_dot_product_attention",
    "FSRCNN",
    "FSRCNN_25_5_1",
    "FSRCNN_56_12_4",
]
