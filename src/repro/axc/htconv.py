"""HTCONV: the hybrid foveated transposed convolution of Fig. 3 / Fig. 4.

The human visual system has high acuity only inside the *fovea*; the paper
exploits this by computing the x2 transposed convolution exactly inside a
configurable foveal region and replacing the three odd-indexed outputs of
every peripheral 2x2 block with cheap averages of the exactly-computed
even-even neighbours (Fig. 3, lines 16-21).

The implementation mirrors the pseudo-code's dataflow: for every input
pixel ``(i, j)`` the four output pixels ``O(2i+a, 2j+b)`` are produced;
foveal pixels charge ``4*t*t*C`` MACs, peripheral pixels charge ``t*t*C``
MACs plus five interpolation adds (two 2-term averages and one 4-term
average; the divisions are power-of-two shifts and free in hardware).

Peripheral interpolation references the even-even outputs of the *next*
block (``O(2i+2, 2j)`` etc.); at the bottom/right image border those do
not exist and the nearest available even-even output is used (the hardware
line buffer of Fig. 4 replicates its last entry the same way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.axc.layers import _check_feature_map, zero_upsample_x2
from repro.axc.macs import MacCounter
from repro.perf import profiled


@dataclass(frozen=True)
class FovealRegion:
    """Circular foveal region in input-pixel coordinates.

    ``center`` is ``(row, col)`` and ``radius`` is in input pixels; the
    region is the disk ``(i - row)^2 + (j - col)^2 <= radius^2``.
    """

    center: Tuple[float, float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be non-negative")

    def mask(self, height: int, width: int) -> np.ndarray:
        """Boolean ``(height, width)`` mask of foveal input pixels."""
        if height <= 0 or width <= 0:
            raise ValueError("mask dimensions must be positive")
        rows = np.arange(height)[:, None] - self.center[0]
        cols = np.arange(width)[None, :] - self.center[1]
        return rows**2 + cols**2 <= self.radius**2

    def coverage(self, height: int, width: int) -> float:
        """Fraction of input pixels inside the fovea."""
        return float(self.mask(height, width).mean())

    @classmethod
    def centered(
        cls, height: int, width: int, fraction: float
    ) -> "FovealRegion":
        """Centered fovea covering approximately *fraction* of the image.

        The disk is clipped by the image rectangle, so the radius is found
        by bisection on the *actual* pixel coverage rather than the
        unclipped-area formula.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        center = ((height - 1) / 2.0, (width - 1) / 2.0)
        if fraction == 0.0:
            return cls(center=center, radius=0.0)
        lo, hi = 0.0, float(np.hypot(height, width))
        for _ in range(40):
            mid = (lo + hi) / 2.0
            if cls(center=center, radius=mid).coverage(height, width) < fraction:
                lo = mid
            else:
                hi = mid
        return cls(center=center, radius=hi)

    @classmethod
    def everything(cls) -> "FovealRegion":
        """Degenerate fovea covering any image (HTCONV == exact TCONV)."""
        return cls(center=(0.0, 0.0), radius=float("inf"))

    @classmethod
    def nothing(cls) -> "FovealRegion":
        """Empty fovea (fully approximate HTCONV)."""
        return cls(center=(-1.0, -1.0), radius=0.0)


def _even_even_outputs(x: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Exact outputs ``O(2i, 2j)`` for every input pixel (H x W array).

    These are computed for *all* pixels -- Fig. 3 computes line 18 in the
    peripheral branch too -- so they can be vectorized in one pass.
    """
    c, h, w = x.shape
    t = kernel.shape[-1]
    up = zero_upsample_x2(x, pad_tail=t - 1)
    windows = sliding_window_view(up, (t, t), axis=(1, 2))
    even = windows[:, : 2 * h : 2, : 2 * w : 2]
    return np.einsum("cyxuv,cuv->yx", even, kernel)


def _odd_outputs_exact(
    x: np.ndarray, kernel: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact outputs ``O(2i+1, 2j)``, ``O(2i, 2j+1)``, ``O(2i+1, 2j+1)``
    for every input pixel (three H x W arrays), used inside the fovea."""
    c, h, w = x.shape
    t = kernel.shape[-1]
    up = zero_upsample_x2(x, pad_tail=t)
    windows = sliding_window_view(up, (t, t), axis=(1, 2))
    odd_even = windows[:, 1 : 2 * h : 2, : 2 * w : 2]
    even_odd = windows[:, : 2 * h : 2, 1 : 2 * w : 2]
    odd_odd = windows[:, 1 : 2 * h : 2, 1 : 2 * w : 2]
    contract = lambda win: np.einsum("cyxuv,cuv->yx", win, kernel)  # noqa: E731
    return contract(odd_even), contract(even_odd), contract(odd_odd)


def _htconv_x2_scalar(
    x: np.ndarray,
    kernel: np.ndarray,
    foveal: np.ndarray,
) -> np.ndarray:
    """Literal per-pixel Fig. 3 pseudo-code: the scalar reference oracle.

    Two passes, exactly mirroring the dataflow of the vectorized kernel
    (even-even outputs for *every* pixel first, then the three odd
    outputs per pixel): plain Python loops, one multiply-accumulate at a
    time in ``(c, u, v)`` order.
    """
    c, h, w = x.shape
    t = kernel.shape[-1]
    up = zero_upsample_x2(x, pad_tail=t)

    def window_sum(y: int, xx: int) -> float:
        acc = 0.0
        for ch in range(c):
            for u in range(t):
                for v in range(t):
                    acc += kernel[ch, u, v] * up[ch, y + u, xx + v]
        return acc

    even_even = np.zeros((h, w), dtype=np.float64)
    for i in range(h):
        for j in range(w):
            even_even[i, j] = window_sum(2 * i, 2 * j)

    out = np.zeros((2 * h, 2 * w), dtype=np.float64)
    out[0::2, 0::2] = even_even
    for i in range(h):
        for j in range(w):
            if foveal[i, j]:
                out[2 * i + 1, 2 * j] = window_sum(2 * i + 1, 2 * j)
                out[2 * i, 2 * j + 1] = window_sum(2 * i, 2 * j + 1)
                out[2 * i + 1, 2 * j + 1] = window_sum(2 * i + 1, 2 * j + 1)
            else:
                south = even_even[min(i + 1, h - 1), j]
                east = even_even[i, min(j + 1, w - 1)]
                south_east = even_even[min(i + 1, h - 1), min(j + 1, w - 1)]
                ee = even_even[i, j]
                out[2 * i + 1, 2 * j] = (ee + south) / 2.0
                out[2 * i, 2 * j + 1] = (ee + east) / 2.0
                out[2 * i + 1, 2 * j + 1] = (
                    ee + east + south + south_east
                ) / 4.0
    return out


@profiled("axc.htconv_x2")
def htconv_x2(
    x: np.ndarray,
    kernel: np.ndarray,
    fovea: FovealRegion,
    counter: Optional[MacCounter] = None,
    layer_name: str = "htconv",
    impl: str = "numpy",
) -> np.ndarray:
    """Hybrid x2 transposed convolution (Fig. 3 pseudo-code).

    *x* is ``(C, H, W)``, *kernel* is ``(C, t, t)``; returns ``(2H, 2W)``.
    Inside *fovea* the output matches
    :func:`repro.axc.layers.transposed_conv2d_x2` exactly; outside, odd
    outputs are neighbour averages of the even-even exact outputs.

    ``impl="scalar"`` runs the literal per-pixel pseudo-code (the
    reference oracle; MAC charges are identical); ``impl="numpy"``
    (default) is the batched ``sliding_window_view``/``einsum`` kernel.
    The two agree to reduction-reordering rounding (policy pinned in the
    equivalence tests).
    """
    x = _check_feature_map(x)
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 3 or kernel.shape[1] != kernel.shape[2]:
        raise ValueError(f"kernel must be (C, t, t), got {kernel.shape}")
    if kernel.shape[0] != x.shape[0]:
        raise ValueError("channel mismatch between input and kernel")
    if impl not in ("scalar", "numpy"):
        raise ValueError(f"impl must be 'scalar' or 'numpy', got {impl!r}")
    c, h, w = x.shape
    t = kernel.shape[-1]
    foveal = fovea.mask(h, w)

    if impl == "scalar":
        out = _htconv_x2_scalar(x, kernel, foveal)
        if counter is not None:
            _charge_htconv(counter, layer_name, foveal, h, w, t, c)
        return out

    even_even = _even_even_outputs(x, kernel)

    out = np.zeros((2 * h, 2 * w), dtype=np.float64)
    out[0::2, 0::2] = even_even

    # Foveal region: all four outputs exact (Fig. 3 lines 8-15).
    odd_even, even_odd, odd_odd = _odd_outputs_exact(x, kernel)
    out[1::2, 0::2][foveal] = odd_even[foveal]
    out[0::2, 1::2][foveal] = even_odd[foveal]
    out[1::2, 1::2][foveal] = odd_odd[foveal]

    # Peripheral region: interpolate from the even-even grid (lines 19-21),
    # clamping at the bottom/right border where O(2i+2, .) does not exist.
    south = np.vstack([even_even[1:], even_even[-1:]])
    east = np.hstack([even_even[:, 1:], even_even[:, -1:]])
    south_east = np.vstack([east[1:], east[-1:]])
    periph = ~foveal
    out[1::2, 0::2][periph] = (even_even[periph] + south[periph]) / 2.0
    out[0::2, 1::2][periph] = (even_even[periph] + east[periph]) / 2.0
    out[1::2, 1::2][periph] = (
        even_even[periph] + east[periph] + south[periph] + south_east[periph]
    ) / 4.0

    if counter is not None:
        _charge_htconv(counter, layer_name, foveal, h, w, t, c)
    return out


def _charge_htconv(
    counter: MacCounter,
    layer_name: str,
    foveal: np.ndarray,
    h: int,
    w: int,
    t: int,
    c: int,
) -> None:
    """MAC/interp accounting shared by both kernel implementations."""
    n_foveal = int(foveal.sum())
    n_periph = h * w - n_foveal
    per_pixel = t * t * c
    counter.charge_macs(
        layer_name, n_foveal * 4 * per_pixel + n_periph * per_pixel
    )
    # Two 2-term averages (1 add each) + one 4-term average (3 adds).
    counter.charge_interp(layer_name, n_periph * 5)


def htconv_mac_model(
    height: int, width: int, kernel_size: int, channels: int, coverage: float
) -> Tuple[int, int]:
    """Analytic (HTCONV MACs, exact-TCONV MACs) for a given foveal
    *coverage* fraction -- the closed-form behind the ">80% MAC saving"
    claim: saving = 0.75 * (1 - coverage) relative to the dense TCONV of
    the same geometry."""
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    per_pixel = kernel_size * kernel_size * channels
    n_pixels = height * width
    exact = 4 * n_pixels * per_pixel
    n_foveal = int(round(coverage * n_pixels))
    hybrid = n_foveal * 4 * per_pixel + (n_pixels - n_foveal) * per_pixel
    return hybrid, exact
