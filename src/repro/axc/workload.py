"""AxC HTCONV adapter for the unified :class:`~repro.core.api.Workload`
contract: one evaluation runs the hybrid x2 transposed convolution on a
seeded feature map and scores its fidelity and MAC savings against the
exact kernel (the Table I quality/cost trade-off cell)."""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.api import RunResult, build_run_result, register_workload
from repro.core.errors import ValidationError


class HTConvWorkload:
    """``axc-htconv``: foveated hybrid transposed convolution."""

    name = "axc-htconv"

    def space(self) -> Dict[str, tuple]:
        return {
            "channels": (4, 8, 16),
            "height": (16, 24, 32),
            "width": (16, 24, 32),
            "kernel": (3, 5),
            "coverage": (0.25, 0.0, 0.5, 1.0),
        }

    def evaluate(
        self,
        config: Mapping[str, Any],
        *,
        seed: int = 0,
        impl: Optional[str] = None,
    ) -> RunResult:
        from repro.axc.htconv import FovealRegion, htconv_x2
        from repro.axc.macs import MacCounter
        from repro.core.metrics import mse, psnr

        if impl not in (None, "scalar", "numpy"):
            raise ValidationError(
                f"axc-htconv supports impl=None|'scalar'|'numpy', got {impl!r}"
            )
        cfg = dict(config)
        c = int(cfg["channels"])
        h = int(cfg["height"])
        w = int(cfg["width"])
        t = int(cfg.get("kernel", 3))
        coverage = float(cfg.get("coverage", 0.25))
        rng = np.random.default_rng(np.random.SeedSequence([seed, c, h, w]))
        x = rng.normal(size=(c, h, w))
        kernel = rng.normal(size=(c, t, t))
        fovea = FovealRegion.centered(h, w, coverage)

        start = time.perf_counter()
        counter = MacCounter()
        hybrid = htconv_x2(
            x, kernel, fovea, counter=counter, impl=impl or "numpy"
        )
        wall = time.perf_counter() - start

        exact_counter = MacCounter()
        exact = htconv_x2(
            x, kernel, FovealRegion.everything(),
            counter=exact_counter, layer_name="exact", impl=impl or "numpy",
        )
        macs = sum(counter.macs.values())
        exact_macs = sum(exact_counter.macs.values())
        quality_db = psnr(exact, hybrid, peak=float(np.max(np.abs(exact))))
        metrics = {
            "mse": mse(exact, hybrid),
            "psnr_db": (
                quality_db if np.isfinite(quality_db) else 1e9
            ),
            "macs": macs,
            "interp_adds": sum(counter.interp_adds.values()),
            "exact_macs": exact_macs,
            "mac_savings": 1.0 - (macs / exact_macs if exact_macs else 0.0),
            "foveal_coverage": fovea.coverage(h, w),
        }
        return build_run_result(
            self.name, metrics, config=cfg, seed=seed, impl=impl,
            wall_time_s=wall,
        )


register_workload(HTConvWorkload())
