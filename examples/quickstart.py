#!/usr/bin/env python
"""Quickstart: a five-minute tour of the ICSC Flagship 2 reproduction.

Touches one headline result from each research thrust of the paper:

1. the survey's efficiency ranking (Fig. 1);
2. an HLS + DSE run on a GEMM kernel (Sec. III);
3. HTCONV's MAC saving at matched quality (Sec. V / Table I);
4. an analog-IMC matrix-vector product (Sec. IV);
5. a DNA-storage round trip (Sec. VI);
6. the Compute Unit's operating point (Sec. VII / Fig. 9).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.axc.htconv import FovealRegion, htconv_mac_model
from repro.core.units import GIGA, TERA, si_format
from repro.dna.decoder import DNAStorageSystem
from repro.dna.encoding import OligoLayout
from repro.dse.explorer import NSGA2Explorer
from repro.dse.runner import DSERunner
from repro.hls.kernels import make_kernel
from repro.imc.crossbar import AnalogCrossbar, CrossbarConfig
from repro.scf.cluster import ComputeUnit
from repro.scf.workloads import TransformerConfig, transformer_block_gemms
from repro.survey import class_statistics, load_dataset


def main() -> None:
    print("=== 1. Survey (Fig. 1): efficiency ranking ===")
    for stats in class_statistics(load_dataset()):
        print(
            f"  {stats.platform.value:16s} median "
            f"{stats.median_tops_per_watt:8.2f} TOPS/W ({stats.count} designs)"
        )

    print("\n=== 2. HLS + DSE (Sec. III): GEMM directive exploration ===")
    runner = DSERunner(make_kernel("gemm", size=256))
    result = runner.run(NSGA2Explorer(population=16), budget=80, seed=0)
    print(f"  explored {result.unique_evaluations} design points, "
          f"Pareto front of {len(result.front)}:")
    for point in result.front[:5]:
        print(
            f"    unroll={point.config['unroll']:>2} "
            f"pipeline={str(point.config['pipeline']):5s} -> "
            f"{point.latency_s * 1e6:7.2f} us, area {point.area:.0f}"
        )

    print("\n=== 3. HTCONV (Sec. V): MAC saving at 25% foveal coverage ===")
    fovea = FovealRegion.centered(540, 960, 0.25)
    coverage = fovea.coverage(540, 960)
    hybrid, exact = htconv_mac_model(540, 960, 9, 25, coverage)
    print(f"  exact TCONV : {exact:,} MACs per frame")
    print(f"  HTCONV      : {hybrid:,} MACs per frame "
          f"({100 * (1 - hybrid / exact):.1f}% saved)")

    print("\n=== 4. Analog IMC (Sec. IV): crossbar MVM ===")
    xbar = AnalogCrossbar(CrossbarConfig(rows=32, cols=32), seed=0)
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.3, (32, 32))
    xbar.program_weights(weights)
    x = rng.uniform(-1, 1, 32)
    y = xbar.mvm(x)
    err = np.linalg.norm(y - weights.T @ x) / np.linalg.norm(weights.T @ x)
    print(f"  32x32 RRAM crossbar MVM relative error: {100 * err:.1f}% "
          f"({xbar.ledger.adc_conversions} ADC conversions)")

    print("\n=== 5. DNA storage (Sec. VI): round trip ===")
    system = DNAStorageSystem(
        layout=OligoLayout(payload_bytes=10, index_bytes=1),
        rs_n=40, rs_k=30, seed=0,
    )
    payload = b"ICSC Flagship 2: architectures for AI workloads!"
    report = system.roundtrip(payload)
    print(f"  stored {len(payload)} B -> {report.num_reads} noisy reads -> "
          f"recovered: {report.payload == payload} "
          f"({si_format(report.cell_updates, 'cell updates')})")

    print("\n=== 6. Compute Unit (Sec. VII / Fig. 9) ===")
    cu = ComputeUnit()
    for _, m, n, k, count in transformer_block_gemms(TransformerConfig()):
        for _ in range(count):
            cu.run_gemm(m, n, k)
    print(
        f"  transformer block on one CU: "
        f"{cu.achieved_flops() / GIGA:.0f} GFLOPS, "
        f"{cu.achieved_efficiency_flops_per_w() / TERA:.2f} TFLOPS/W "
        "(published: 150 GFLOPS, 1.5 TFLOPS/W)"
    )


if __name__ == "__main__":
    main()
