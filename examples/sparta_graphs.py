#!/usr/bin/env python
"""SPARTA accelerators on irregular graph kernels (paper Sec. III).

Builds BFS / SpMV / PageRank task graphs over a synthetic graph and runs
them on the cycle-level SPARTA system, sweeping the hardware-context
count to show memory-latency hiding, then ablating the memory-side cache
and the multi-channel NoC.

Run:  python examples/sparta_graphs.py
"""

from repro.sparta import (
    bfs_tasks,
    pagerank_tasks,
    random_graph,
    simulate,
    spmv_tasks,
)


def main() -> None:
    graph = random_graph(num_nodes=256, avg_degree=8, seed=0)
    regions = {
        "bfs": bfs_tasks(graph),
        "spmv": spmv_tasks(num_rows=256, avg_nnz=8, seed=1),
        "pagerank": pagerank_tasks(graph),
    }

    print("context-count sweep (4 lanes, 4 memory channels):")
    print(f"{'kernel':10s}" + "".join(f"  ctx={c:<8d}" for c in (1, 2, 4, 8))
          + "speedup")
    for name, region in regions.items():
        cycles = [
            simulate(region, num_lanes=4, contexts_per_lane=c).cycles
            for c in (1, 2, 4, 8)
        ]
        row = "".join(f"  {c:<12,d}"[:12] for c in cycles)
        print(f"{name:10s}" + "".join(f"  {c:<10,d}" for c in cycles)
              + f"x{cycles[0] / cycles[-1]:.1f}")

    bfs = regions["bfs"]
    with_cache = simulate(bfs, num_lanes=4, contexts_per_lane=8)
    without = simulate(bfs, num_lanes=4, contexts_per_lane=8,
                       enable_cache=False)
    print(f"\nmemory-side cache (bfs, 8 contexts): "
          f"{without.cycles:,} -> {with_cache.cycles:,} cycles "
          f"(hit rate {100 * with_cache.cache_hit_rate:.0f}%)")

    one = simulate(bfs, num_lanes=8, contexts_per_lane=16,
                   num_channels=1, enable_cache=False)
    four = simulate(bfs, num_lanes=8, contexts_per_lane=16,
                    num_channels=4, enable_cache=False)
    print(f"memory channels under contention (8 lanes, 16 contexts): "
          f"1ch {one.cycles:,} -> 4ch {four.cycles:,} cycles")
    print(f"\nutilization at 8 contexts: "
          f"{100 * with_cache.utilization:.0f}% "
          f"({with_cache.context_switches:,} context switches)")


if __name__ == "__main__":
    main()
