#!/usr/bin/env python
"""DNA-based data storage end to end (paper Sec. VI, Fig. 6).

Stores a text payload in synthetic DNA, pushes it through a noisy
synthesis/PCR/sequencing channel, decodes it back via edit-distance
clustering + consensus + Reed-Solomon, and prices the edit-distance
workload on the Alveo U50 accelerator model (16.8 TCUPS, 46 Mpair/J).

Run:  python examples/dna_storage.py
"""

from repro.core.units import si_format
from repro.dna.channel import ChannelParams
from repro.dna.decoder import DNAStorageSystem
from repro.dna.encoding import OligoLayout, gc_content, max_homopolymer_run
from repro.dna.fpga_accel import (
    EditDistanceAcceleratorModel,
    SoftwareBaselineModel,
)

PAYLOAD = (
    b"The ICSC Flagship 2 project develops architectures and design "
    b"methodologies to accelerate AI workloads on heterogeneous HPC "
    b"platforms, from in-memory computing to RISC-V compute fabrics."
)


def main() -> None:
    system = DNAStorageSystem(
        layout=OligoLayout(payload_bytes=10, index_bytes=1),
        rs_n=40,
        rs_k=30,
        channel_params=ChannelParams(
            substitution_rate=0.01,
            insertion_rate=0.005,
            deletion_rate=0.005,
            mean_coverage=8,
        ),
        seed=0,
    )

    strands = system.store(PAYLOAD)
    print(f"payload: {len(PAYLOAD)} bytes -> {len(strands)} oligos of "
          f"{len(strands[0])} bases")
    print(f"  first oligo: {strands[0][:48]}...")
    print(f"  GC content {100 * gc_content(strands[0]):.0f}%, "
          f"longest homopolymer {max_homopolymer_run(strands[0])}")

    reads = system.channel.transmit(strands)
    print(f"\nchannel produced {len(reads)} noisy reads "
          f"(~{len(reads) / len(strands):.1f}x coverage)")

    report = system.retrieve(reads, len(PAYLOAD))
    print(f"decoded {report.num_clusters} clusters, "
          f"{report.missing_chunks} chunks missing before ECC")
    print(f"recovered: {report.payload == PAYLOAD}")
    if report.payload:
        print(f"  text: {report.payload[:60].decode()}...")

    fpga = EditDistanceAcceleratorModel()
    cpu = SoftwareBaselineModel()
    cells = report.cell_updates
    print(f"\nedit-distance workload: {si_format(cells, 'cells')}")
    print(f"  Alveo U50 model: {fpga.num_pes} PEs, "
          f"{si_format(fpga.sustained_cups, 'CUPS')}, "
          f"{100 * fpga.resource_utilization:.0f}% LUTs")
    print(f"  decode compute time: FPGA "
          f"{si_format(fpga.time_for_cells(cells), 's')} vs CPU "
          f"{si_format(cpu.time_for_cells(cells), 's')}")
    print(f"  energy: FPGA {si_format(fpga.energy_for_cells(cells), 'J')} "
          f"vs CPU {si_format(cpu.energy_for_cells(cells), 'J')}")


if __name__ == "__main__":
    main()
