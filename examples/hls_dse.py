#!/usr/bin/env python
"""HLS + DSE toolchain walkthrough (paper Sec. III).

Takes the GEMM kernel through the full flow: schedule one configuration
by hand, sweep directives with the NSGA-II explorer, inspect parameter
sensitivity, compare the Bambu and commercial backend envelopes, and
lower the irregular gather kernel onto SPARTA.

Run:  python examples/hls_dse.py
"""

from repro.dse.explorer import NSGA2Explorer, best_tradeoff
from repro.dse.objectives import HLSEvaluator
from repro.dse.runner import DSERunner
from repro.dse.sensitivity import parameter_sensitivity
from repro.dse.space import hls_directive_space
from repro.hls.backends import BambuBackend, CommercialBackend, InputFormat
from repro.hls.directives import Directives, synthesize
from repro.hls.kernels import make_kernel
from repro.sparta.frontend import lower_loop_nest
from repro.sparta.simulator import simulate


def main() -> None:
    nest = make_kernel("gemm", size=256)
    print(f"kernel: {nest.name}, trip count {nest.trip_count}, "
          f"{nest.body_size} ops/iteration")

    baseline = synthesize(nest, Directives())
    tuned = synthesize(
        nest,
        Directives(unroll=8, pipeline=True, array_partition=8,
                   mul_units=16, add_units=16),
    )
    print(f"\nhand-tuned directives: {baseline.total_cycles} -> "
          f"{tuned.total_cycles} cycles "
          f"({baseline.estimate.luts} -> {tuned.estimate.luts} LUTs)")

    print("\nautomatic DSE (NSGA-II, budget 100):")
    runner = DSERunner(nest)
    result = runner.run(NSGA2Explorer(population=16), budget=100, seed=0)
    knee = best_tradeoff(result.evaluated)
    print(f"  Pareto front: {len(result.front)} points; knee at "
          f"{knee.latency_s * 1e6:.2f} us / area {knee.area:.0f} "
          f"(config {knee.config})")

    print("\nparameter sensitivity around the default point:")
    evaluator = HLSEvaluator(nest, hls_directive_space())
    base = {p.name: p.values[0] for p in evaluator.space.parameters}
    for row in parameter_sensitivity(evaluator, base):
        print(f"  {row.parameter:16s} latency x{row.latency_span:5.1f}  "
              f"area x{row.area_span:4.1f}")

    print("\nbackend envelopes (Sec. III tool comparison):")
    for backend in (BambuBackend(), CommercialBackend()):
        row = backend.feature_row()
        print(f"  {row['tool']:24s} IR input: {row['ir_input']}, "
              f"multi-vendor: {row['multi_vendor']}, "
              f"ASIC: {row['asic_target']}")
    try:
        CommercialBackend().synthesize(
            nest, input_format=InputFormat.COMPILER_IR
        )
    except ValueError as exc:
        print(f"  (commercial flow: {exc})")

    gather = make_kernel("gather", size=128)
    region = lower_loop_nest(gather, seed=0)
    one = simulate(region, num_lanes=2, contexts_per_lane=1)
    many = simulate(region, num_lanes=2, contexts_per_lane=8)
    print(f"\nirregular gather kernel lowered onto SPARTA: "
          f"{one.cycles:,} cycles (1 context) -> {many.cycles:,} "
          f"(8 contexts, x{one.cycles / many.cycles:.1f})")


if __name__ == "__main__":
    main()
