#!/usr/bin/env python
"""DNN inference on analog in-memory computing tiles (paper Sec. IV).

Trains a small MLP in float, maps it onto RRAM and PCM crossbar tiles,
and measures accuracy across a ten-year drift sweep with the paper's
mitigations (program-and-verify, digital drift compensation) switched on
and off.  Ends with the Fig. 2 data-movement comparison.

Run:  python examples/imc_inference.py
"""

import numpy as np

from repro.imc.crossbar import CrossbarConfig
from repro.imc.devices import PCM_PARAMS, RRAM_PARAMS
from repro.imc.nn import IMCInferenceEngine, make_blobs, train_mlp
from repro.imc.taxonomy import taxonomy_table
from repro.imc.tiles import TileConfig

DRIFT_TIMES = (1.0, 3600.0, 86400.0 * 30, 86400.0 * 3650)
DRIFT_LABELS = ("1 s", "1 hour", "1 month", "10 years")


def main() -> None:
    x, labels = make_blobs(n_samples=300, seed=0)
    model = train_mlp(x, labels, seed=0)
    float_acc = float(np.mean(model.predict(x) == labels))
    print(f"float MLP accuracy: {float_acc:.3f}")

    configs = {
        "RRAM, verify + compensation": TileConfig(
            crossbar=CrossbarConfig(rows=32, cols=32, device=RRAM_PARAMS),
        ),
        "PCM, verify + compensation": TileConfig(
            crossbar=CrossbarConfig(rows=32, cols=32, device=PCM_PARAMS),
        ),
        "PCM, open loop, no compensation": TileConfig(
            crossbar=CrossbarConfig(
                rows=32, cols=32, device=PCM_PARAMS,
                use_program_verify=False,
            ),
            drift_compensation=False,
        ),
    }

    print(f"\n{'configuration':34s}" +
          "".join(f"{label:>10s}" for label in DRIFT_LABELS))
    for name, config in configs.items():
        engine = IMCInferenceEngine(model, config, seed=1)
        accs = [
            engine.accuracy(x[:150], labels[:150], t_seconds=t)
            for t in DRIFT_TIMES
        ]
        print(f"{name:34s}" + "".join(f"{a:10.3f}" for a in accs))
    print("\n(the paper's point: program-and-verify [10] plus digital "
          "drift compensation keep analog accuracy near float)")

    print("\nFig. 2 -- energy of one 512x512 MVM per architecture:")
    for row in taxonomy_table():
        print(
            f"  {row['architecture']:16s} total {row['total_pj']:12.1f} pJ "
            f"(movement share {100 * row['movement_fraction']:5.1f}%)"
        )


if __name__ == "__main__":
    main()
