#!/usr/bin/env python
"""Super-resolution with the approximate HTCONV layer (paper Sec. V).

Trains FSRCNN(25,5,1) on synthetic scenes, quantizes it to 16-bit fixed
point, and upscales a test image twice -- once with the exact transposed
convolution, once with HTCONV at 25% foveal coverage -- reporting PSNR,
MAC counts and the estimated FPGA implementation (Table I's 'New' row).

Run:  python examples/super_resolution.py
"""

from repro.axc.data import sr_pair
from repro.axc.fpga_cost import estimate_htconv_accelerator
from repro.axc.fsrcnn import FSRCNN, FSRCNN_25_5_1
from repro.axc.htconv import FovealRegion
from repro.axc.macs import MacCounter
from repro.axc.training import train_fsrcnn
from repro.core.fixedpoint import Q16
from repro.core.metrics import psnr


def main() -> None:
    print("training FSRCNN(25,5,1) on synthetic scenes...")
    model = FSRCNN(FSRCNN_25_5_1, seed=0)
    result = train_fsrcnn(model, steps=250, patch=24, seed=1)
    print(f"  {result.steps} steps, final training PSNR "
          f"{result.final_psnr_db:.2f} dB")

    lr_img, hr_img = sr_pair(96, 96, kind="mixed", seed=42)
    fovea = FovealRegion.centered(*lr_img.shape, 0.25)
    print(f"\nupscaling {lr_img.shape} -> {hr_img.shape}, "
          f"fovea covers {100 * fovea.coverage(*lr_img.shape):.0f}% "
          "of input pixels")

    exact_counter = MacCounter()
    exact = model.forward(lr_img, quant_fmt=Q16, counter=exact_counter)
    hybrid_counter = MacCounter()
    hybrid = model.forward(
        lr_img, tconv_mode="htconv", fovea=fovea, quant_fmt=Q16,
        counter=hybrid_counter,
    )

    p_exact = psnr(hr_img, exact, peak=1.0)
    p_hybrid = psnr(hr_img, hybrid, peak=1.0)
    print(f"\n  exact TCONV : PSNR {p_exact:6.2f} dB, "
          f"{exact_counter.total_macs:,} MACs")
    print(f"  HTCONV      : PSNR {p_hybrid:6.2f} dB, "
          f"{hybrid_counter.total_macs:,} MACs "
          f"(+{hybrid_counter.total_interp_adds:,} interp adds)")
    print(f"  MAC saving  : "
          f"{100 * hybrid_counter.saving_vs(exact_counter):.1f}%  "
          f"PSNR change: {100 * (1 - p_hybrid / p_exact):+.1f}%")

    row = estimate_htconv_accelerator()
    print("\nestimated FPGA implementation (Table I 'New' row, modeled):")
    print(f"  {row.device}: {row.fmax_mhz} MHz, "
          f"{row.throughput_mpixels} Mpixels/s, "
          f"{row.resources.luts} LUTs / {row.resources.dsps} DSPs, "
          f"{row.power_w} W -> {row.energy_efficiency:.1f} Mpixels/s/W")


if __name__ == "__main__":
    main()
