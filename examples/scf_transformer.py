#!/usr/bin/env python
"""Transformer inference on the Scalable Compute Fabric (paper Sec. VII).

Runs a BF16 encoder block on one Compute Unit (checking the Fig. 9
operating point), scales the fabric from 1 to 64 CUs under both
interconnect options of Fig. 8 (hierarchical AXI vs NoC), and executes a
small RV32IM host-dispatch program on the functional RISC-V simulator.

Run:  python examples/scf_transformer.py
"""

from repro.core.units import GIGA, TERA
from repro.scf.cluster import ComputeUnit
from repro.scf.fabric import ScalableComputeFabric
from repro.scf.interconnect import AXIHierarchy, NocMesh
from repro.scf.power import CU_PUBLISHED, dvfs_scale
from repro.scf.rv32 import assemble_and_run
from repro.scf.workloads import TransformerConfig, transformer_block_gemms


def main() -> None:
    workload = TransformerConfig(seq_len=2048, d_model=512, num_heads=8)
    print(f"workload: encoder block, seq={workload.seq_len}, "
          f"d_model={workload.d_model}, heads={workload.num_heads}")

    cu = ComputeUnit()
    for name, m, n, k, count in transformer_block_gemms(
        TransformerConfig()
    ):
        for _ in range(count):
            cu.run_gemm(m, n, k)
    print(f"\none Compute Unit (Fig. 9): "
          f"{cu.achieved_flops() / GIGA:.0f} GFLOPS, "
          f"{cu.achieved_efficiency_flops_per_w() / TERA:.2f} TFLOPS/W "
          f"@ {cu.clock_hz / 1e6:.0f} MHz "
          "(published: 150 GFLOPS, 1.5 TFLOPS/W @ 460 MHz)")

    print("\nSCF scale-up (Fig. 8), sequence-parallel:")
    print(f"{'CUs':>4s} {'NoC GFLOPS':>12s} {'eff':>6s} "
          f"{'AXI GFLOPS':>12s} {'eff':>6s}")
    noc_fabric = ScalableComputeFabric(interconnect=NocMesh())
    axi_fabric = ScalableComputeFabric(interconnect=AXIHierarchy())
    for n in (1, 4, 16, 64):
        noc = noc_fabric.run_block(workload, n)
        axi = axi_fabric.run_block(workload, n)
        print(f"{n:>4d} {noc.sustained_flops / GIGA:>12.0f} "
              f"{noc.parallel_efficiency:>6.2f} "
              f"{axi.sustained_flops / GIGA:>12.0f} "
              f"{axi.parallel_efficiency:>6.2f}")
    print("(the AXI tree's root port saturates at 64 CUs; "
          "the NoC keeps scaling -- Fig. 8's interconnect choice)")

    print("\nDVFS around the published 0.55 V point:")
    for v in (0.45, 0.55, 0.70):
        op = dvfs_scale(CU_PUBLISHED, v)
        print(f"  {v:.2f} V: {op.clock_hz / 1e6:6.0f} MHz, "
              f"{op.peak_flops / GIGA:6.0f} GFLOPS, "
              f"{op.efficiency_tflops_per_w:5.2f} TFLOPS/W")

    host_program = """
        li t0, 2048       # sequence length
        li t1, 64         # CUs
        divu a0, t0, t1   # rows per CU the host dispatches
        li a7, 93
        ecall
    """
    sim = assemble_and_run(host_program)
    print(f"\nRV32IM host program dispatched {sim.exit_code} rows/CU "
          f"({sim.instructions_retired} instructions, {sim.cycles} cycles)")


if __name__ == "__main__":
    main()
