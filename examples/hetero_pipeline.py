#!/usr/bin/env python
"""The heterogeneous DL pipeline for medical segmentation (paper Sec. VI).

Profiles the Fig. 5 end-to-end pipeline on CPU / GPU / FPGA platforms,
identifies the bottleneck, applies the I/O-path optimizations
(low-latency SSD, persistent memory, computational storage) and reports
the training/inference gains -- plus a tiny accuracy demonstration on a
synthetic CT phantom.

Run:  python examples/hetero_pipeline.py
"""

from repro.core.metrics import dice_coefficient, relative_change
from repro.hetero.devices import CPU_XEON, FPGA_ALVEO, GPU_A100
from repro.hetero.pipeline import simulate_inference, simulate_training
from repro.hetero.profiler import bottleneck_stage, io_share, profile_table
from repro.hetero.storage import (
    NVME_SSD,
    PERSISTENT_MEMORY,
    SATA_SSD,
    computational_storage,
)
from repro.hetero.workload import ct_phantom, threshold_segmenter


def main() -> None:
    base_train = simulate_training(storage=SATA_SSD)
    print(profile_table(base_train,
                        title="Fig. 5 training profile (GPU + SATA SSD)"))
    print(f"\nbottleneck: {bottleneck_stage(base_train).stage}; "
          f"I/O path share {100 * io_share(base_train):.0f}%")

    base_infer = simulate_inference(storage=SATA_SSD)
    print("\nI/O-path optimization:")
    for name, storage in [
        ("NVMe SSD", NVME_SSD),
        ("Persistent Memory", PERSISTENT_MEMORY),
        ("Computational Storage", computational_storage()),
    ]:
        train = simulate_training(storage=storage)
        infer = simulate_inference(storage=storage)
        t_cut = -100 * relative_change(
            base_train.total_seconds, train.total_seconds
        )
        i_gain = 100 * relative_change(
            base_infer.throughput_volumes_s, infer.throughput_volumes_s
        )
        print(f"  {name:22s} training -{t_cut:.1f}%  "
              f"inference +{i_gain:.1f}%")
    print('(the paper: "training time reduction of up to 10% and '
          'inference throughput improvement of up to 10%")')

    print("\ninference device sweep (SATA):")
    for device in (CPU_XEON, GPU_A100, FPGA_ALVEO):
        result = simulate_inference(device=device)
        print(f"  {device.name:16s} {result.throughput_volumes_s:6.2f} "
              f"volumes/s, {result.energy_j / 1e3:7.1f} kJ")

    volume, mask = ct_phantom(shape=(16, 48, 48), seed=0)
    predicted = threshold_segmenter(volume)
    print(f"\nsynthetic CT phantom: threshold segmenter Dice = "
          f"{dice_coefficient(predicted, mask):.3f} "
          f"({int(mask.sum())} lesion voxels)")


if __name__ == "__main__":
    main()
